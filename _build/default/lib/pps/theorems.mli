(** Executable checkers for every theorem, lemma and corollary of the
    paper.

    Each checker evaluates, with exact rational arithmetic, both the
    hypothesis and the conclusion of one result on a concrete pps, a
    proper action and a fact, and reports all intermediate quantities.
    The [respected] field of each report is the material implication
    "hypotheses ⟹ conclusion"; the paper's results assert it is [true]
    for {e every} pps, which the test suite and benchmark harness verify
    on the paper's own constructions and on thousands of random systems.

    All checkers raise {!Action.Not_proper} when the action is not
    proper, since every result of the paper assumes properness. *)

open Pak_rational

(** {1 Theorem 6.2 — the expectation identity (main theorem)} *)

type expectation_report = {
  mu : Q.t;               (** µ(ϕ@α | α) *)
  expected_belief : Q.t;  (** E_µ(β_i(ϕ)@α | α), Definition 6.1 *)
  independent : bool;     (** local-state independence of ϕ from α *)
  identity : bool;        (** [mu = expected_belief], exactly *)
  respected : bool;       (** independent ⟹ identity *)
}

val expectation_identity : Fact.t -> agent:int -> act:string -> expectation_report
(** Theorem 6.2: under local-state independence,
    [µ(ϕ@α | α) = E(β_i(ϕ)@α | α)]. *)

(** {1 Theorem 4.2 — sufficiency of meeting the threshold} *)

type sufficiency_report = {
  threshold : Q.t;
  independent : bool;
  min_belief : Q.t;        (** min of β_i(ϕ) over the α-points *)
  premise : bool;          (** β_i(ϕ) ≥ p at every point where α is performed *)
  mu : Q.t;                (** µ(ϕ@α | α) *)
  conclusion : bool;       (** mu ≥ p *)
  respected : bool;        (** (independent ∧ premise) ⟹ conclusion *)
}

val sufficiency : Fact.t -> agent:int -> act:string -> p:Q.t -> sufficiency_report

(** {1 Lemma 4.3 — sufficient conditions for independence} *)

type lemma43_report = {
  deterministic : bool;   (** (a): α is a deterministic action in T *)
  past_based : bool;      (** (b): ϕ is past-based in T *)
  independent : bool;
  respected : bool;       (** (deterministic ∨ past_based) ⟹ independent *)
}

val lemma43 : Fact.t -> agent:int -> act:string -> lemma43_report

(** {1 Lemma 5.1 — the threshold must sometimes be met} *)

type necessity_report = {
  threshold : Q.t;
  independent : bool;
  constraint_holds : bool;       (** µ(ϕ@α | α) ≥ p *)
  witness : (int * int) option;  (** a point (run, time) where α is
                                     performed and β_i(ϕ) ≥ p *)
  respected : bool;              (** (independent ∧ constraint) ⟹ witness exists *)
}

val necessity_exists : Fact.t -> agent:int -> act:string -> p:Q.t -> necessity_report

(** {1 Theorem 7.1 and Corollary 7.2 — probably approximately knowing} *)

type pak_report = {
  eps : Q.t;
  delta : Q.t;
  independent : bool;
  mu : Q.t;                     (** µ(ϕ@α | α) *)
  premise : bool;               (** mu ≥ 1 − δ·ε *)
  strong_belief_measure : Q.t;  (** µ(β_i(ϕ)@α ≥ 1−ε | α) *)
  conclusion : bool;            (** strong_belief_measure ≥ 1 − δ *)
  respected : bool;             (** (independent ∧ premise) ⟹ conclusion *)
}

val pak : Fact.t -> agent:int -> act:string -> eps:Q.t -> delta:Q.t -> pak_report
(** Theorem 7.1. @raise Invalid_argument unless ε, δ ∈ (0,1). *)

val pak_corollary : Fact.t -> agent:int -> act:string -> eps:Q.t -> pak_report
(** Corollary 7.2 (δ = ε): if [µ(ϕ@α|α) ≥ 1−ε²] then
    [µ(β_i(ϕ)@α ≥ 1−ε | α) ≥ 1−ε]. Accepts ε ∈ [0,1]; ε = 0 is checked
    via {!kop} and ε = 1 holds trivially. *)

(** {1 Lemma F.1 — the Knowledge-of-Preconditions limit} *)

type kop_report = {
  mu : Q.t;
  premise : bool;           (** µ(ϕ@α | α) = 1 *)
  certain_measure : Q.t;    (** µ(β_i(ϕ)@α = 1 | α) *)
  conclusion : bool;        (** certain_measure = 1 *)
  respected : bool;
}

val kop : Fact.t -> agent:int -> act:string -> kop_report
(** Lemma F.1: if ϕ is local-state independent of α and surely holds
    when α is performed, the agent is surely certain of ϕ when acting —
    the probabilistic analogue of the Knowledge of Preconditions
    principle. The [respected] field additionally requires independence. *)

(** {1 Pretty-printing} *)

val pp_expectation : Format.formatter -> expectation_report -> unit
val pp_sufficiency : Format.formatter -> sufficiency_report -> unit
val pp_lemma43 : Format.formatter -> lemma43_report -> unit
val pp_necessity : Format.formatter -> necessity_report -> unit
val pp_pak : Format.formatter -> pak_report -> unit
val pp_kop : Format.formatter -> kop_report -> unit
