open Pak_rational

type params = {
  n_agents : int;
  depth : int;
  max_branching : int;
  label_alphabet : int;
  act_alphabet : int;
  max_weight : int;
  early_stop_pct : int;
  deterministic_acts : bool;
}

let default_params =
  { n_agents = 2;
    depth = 3;
    max_branching = 2;
    label_alphabet = 2;
    act_alphabet = 3;
    max_weight = 5;
    early_stop_pct = 15;
    deterministic_acts = false
  }

(* SplitMix64-style generator on the 63-bit native int; quality is more
   than sufficient for structural test-case generation. *)
module Prng = struct
  type t = { mutable state : int }

  let create seed = { state = (seed * 2_654_435_769) lxor 0x9E3779B9 }

  (* SplitMix constants truncated to fit OCaml's 63-bit int literals;
     multiplication wraps modulo 2^63, which is what we want. *)
  let next g =
    g.state <- (g.state + 0x1E3779B97F4A7C15) land max_int;
    let z = g.state in
    let z = (z lxor (z lsr 30)) * 0x1F58476D1CE4E5B9 in
    let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
    (z lxor (z lsr 31)) land max_int

  let int g bound = if bound <= 0 then 0 else next g mod bound
end

let normalized_weights rng ~max_weight k =
  let ws = List.init k (fun _ -> 1 + Prng.int rng max_weight) in
  let total = Q.of_int (List.fold_left ( + ) 0 ws) in
  List.map (fun w -> Q.div (Q.of_int w) total) ws

(* Protocol-consistent generation: agent i's action distribution is a
   memoized function of i's local state (time, label), exactly as a
   probabilistic protocol P_i : L_i -> ∆(Act_i) prescribes. This is the
   class of systems the paper's Section 2.2 considers, and it is what
   makes Lemma 4.3(b) (past-based => local-state independent) true; on
   trees with per-node action probabilities the lemma genuinely fails.
   The environment's choice distribution is free per node, and runs
   have uniform length, so generated action labels (which embed their
   depth) are always proper. *)
let tree ?(params = default_params) seed =
  let p = params in
  let rng = Prng.create seed in
  let b = Tree.Builder.create ~n_agents:p.n_agents in
  let fresh_labels depth =
    Array.init p.n_agents (fun _ ->
        Printf.sprintf "s%d_%d" depth (Prng.int rng p.label_alphabet))
  in
  (* P_i(ℓ): memoized per (agent, depth, label). *)
  let protocol_memo : (int * int * string, (string * Q.t) list) Hashtbl.t =
    Hashtbl.create 32
  in
  let agent_dist agent depth label =
    match Hashtbl.find_opt protocol_memo (agent, depth, label) with
    | Some d -> d
    | None ->
      let d =
        if p.deterministic_acts then
          [ (Printf.sprintf "a%d_%d" depth (Hashtbl.hash (agent, label) mod p.act_alphabet),
             Q.one) ]
        else begin
          let support = 1 + Prng.int rng (min 2 p.act_alphabet) in
          let first = Prng.int rng p.act_alphabet in
          let labels =
            List.init support (fun k ->
                Printf.sprintf "a%d_%d" depth ((first + k) mod p.act_alphabet))
          in
          List.combine labels (normalized_weights rng ~max_weight:p.max_weight support)
        end
      in
      Hashtbl.add protocol_memo (agent, depth, label) d;
      d
  in
  let rec expand node depth labels =
    if depth < p.depth then begin
      let env_choices = 1 + Prng.int rng p.max_branching in
      let env_probs = normalized_weights rng ~max_weight:p.max_weight env_choices in
      let dists = Array.init p.n_agents (fun i -> agent_dist i depth labels.(i)) in
      (* Cartesian product of the agents' action choices. *)
      let combos =
        Array.fold_right
          (fun d acc ->
            List.concat_map (fun (a, q) -> List.map (fun (rest, qr) -> (a :: rest, Q.mul q qr)) acc) d)
          dists
          [ ([], Q.one) ]
      in
      List.iteri
        (fun j env_p ->
          List.iter
            (fun (agent_acts, acts_p) ->
              let acts = Array.of_list (Printf.sprintf "e%d_%d" depth j :: agent_acts) in
              let child_labels = fresh_labels (depth + 1) in
              let state =
                Gstate.make
                  ~env:(Printf.sprintf "env%d_%d" (depth + 1) (Prng.int rng p.label_alphabet))
                  ~locals:(Array.to_list child_labels)
              in
              let child =
                Tree.Builder.add_child b ~parent:node ~prob:(Q.mul env_p acts_p) ~acts state
              in
              expand child (depth + 1) child_labels)
            combos)
        env_probs
    end
  in
  let k0 = 1 + Prng.int rng p.max_branching in
  let ws0 = normalized_weights rng ~max_weight:p.max_weight k0 in
  List.iter
    (fun w ->
      let labels = fresh_labels 0 in
      let state =
        Gstate.make
          ~env:(Printf.sprintf "env0_%d" (Prng.int rng p.label_alphabet))
          ~locals:(Array.to_list labels)
      in
      let node = Tree.Builder.add_initial b ~prob:w state in
      expand node 0 labels)
    ws0;
  Tree.Builder.finalize b

(* Arbitrary (not necessarily protocol-consistent) pps: per-node edge
   probabilities and per-edge action labels, with optional early
   leaves. Useful for measure-level properties and for exhibiting that
   protocol-level lemmas can fail outside the protocol-generated
   class. *)
let tree_arbitrary ?(params = default_params) seed =
  let p = params in
  let rng = Prng.create (seed lxor 0x3C6EF372) in
  let b = Tree.Builder.create ~n_agents:p.n_agents in
  let fresh_labels depth =
    Array.init p.n_agents (fun _ ->
        Printf.sprintf "s%d_%d" depth (Prng.int rng p.label_alphabet))
  in
  let rec expand node depth =
    if depth < p.depth && not (depth > 0 && Prng.int rng 100 < p.early_stop_pct) then begin
      let k = 1 + Prng.int rng p.max_branching in
      let ws = normalized_weights rng ~max_weight:p.max_weight k in
      List.iteri
        (fun j w ->
          let acts =
            Array.init (p.n_agents + 1) (fun slot ->
                if slot = 0 then Printf.sprintf "e%d_%d" depth j
                else Printf.sprintf "a%d_%d" depth (Prng.int rng p.act_alphabet))
          in
          let child_labels = fresh_labels (depth + 1) in
          let state =
            Gstate.make
              ~env:(Printf.sprintf "env%d_%d" (depth + 1) (Prng.int rng p.label_alphabet))
              ~locals:(Array.to_list child_labels)
          in
          let child = Tree.Builder.add_child b ~parent:node ~prob:w ~acts state in
          expand child (depth + 1))
        ws
    end
  in
  let k0 = 1 + Prng.int rng p.max_branching in
  let ws0 = normalized_weights rng ~max_weight:p.max_weight k0 in
  List.iter
    (fun w ->
      let labels = fresh_labels 0 in
      let state =
        Gstate.make
          ~env:(Printf.sprintf "env0_%d" (Prng.int rng p.label_alphabet))
          ~locals:(Array.to_list labels)
      in
      let node = Tree.Builder.add_initial b ~prob:w state in
      expand node 0)
    ws0;
  Tree.Builder.finalize b

let past_based_fact tree ~seed =
  let rng = Prng.create (seed lxor 0x5DEECE66D) in
  let per_node = Array.init (Tree.n_nodes tree) (fun _ -> Prng.int rng 2 = 0) in
  Fact.of_pred tree (fun ~run ~time -> per_node.(Tree.run_node tree ~run ~time))

let transient_fact tree ~seed =
  let rng = Prng.create (seed lxor 0x2545F491) in
  (* Pre-draw one bit per point, in a fixed iteration order. *)
  let bits = Hashtbl.create 64 in
  Tree.iter_points tree (fun ~run ~time ->
      Hashtbl.replace bits (run, time) (Prng.int rng 2 = 0));
  Fact.of_pred tree (fun ~run ~time -> Hashtbl.find bits (run, time))

let run_fact tree ~seed =
  let rng = Prng.create (seed lxor 0x41C64E6D) in
  let per_run = Array.init (Tree.n_runs tree) (fun _ -> Prng.int rng 2 = 0) in
  Fact.of_run_pred tree (fun run -> per_run.(run))

let proper_actions tree =
  let pairs = ref [] in
  for agent = 0 to Tree.n_agents tree - 1 do
    List.iter
      (fun act -> if Action.is_proper tree ~agent ~act then pairs := (agent, act) :: !pairs)
      (Tree.agent_actions tree ~agent)
  done;
  List.sort compare !pairs

let pick_proper_action tree ~seed =
  match proper_actions tree with
  | [] -> None
  | actions ->
    let rng = Prng.create (seed lxor 0x6C078965) in
    Some (List.nth actions (Prng.int rng (List.length actions)))
