(** Global states of a purely probabilistic system.

    A global state is a tuple [(l_e, l_1, ..., l_n)] of an environment
    local state and one local state per agent (paper, Section 2.1).
    Local states here are string labels; the synchrony assumption (each
    local state contains the current time) is realized structurally by
    the tree layer, which keys local states on (time, label). *)

type t = { env : string; locals : string array }

val make : env:string -> locals:string list -> t

val of_labels : string -> string list -> t
(** [of_labels env locals], positional variant of {!make}. *)

val n_agents : t -> int

val local : t -> int -> string
(** [local g i] is agent [i]'s local state label (0-based).
    @raise Invalid_argument if [i] is out of range. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
