type t = { env : string; locals : string array }

let make ~env ~locals = { env; locals = Array.of_list locals }
let of_labels env locals = make ~env ~locals

let n_agents g = Array.length g.locals

let local g i =
  if i < 0 || i >= Array.length g.locals then invalid_arg "Gstate.local: agent out of range";
  g.locals.(i)

let equal a b = a.env = b.env && a.locals = b.locals
let compare a b = Stdlib.compare (a.env, a.locals) (b.env, b.locals)

let to_string g =
  Printf.sprintf "(e:%s | %s)" g.env (String.concat ", " (Array.to_list g.locals))

let pp fmt g = Format.pp_print_string fmt (to_string g)
