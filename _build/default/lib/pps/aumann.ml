open Pak_rational

type agreement = {
  run : int;
  time : int;
  beliefs : (int * Q.t) list;
  equal : bool;
}

(* Common knowledge at a synchronous time slice is truth on the whole
   cell of the meet (finest common coarsening) of the agents'
   information partitions. We compute the meet once per time with a
   union–find over the runs alive at that time, joining runs that share
   any group member's local state; a fact is then common knowledge at
   (r,t) iff it holds at every run in r's meet cell. *)

module Slice = struct
  type t = {
    time : int;
    beliefs : (int * int, Q.t) Hashtbl.t; (* (agent, run) -> posterior *)
    cell_repr : int array;                (* run -> meet-cell representative; -1 = dead *)
    members : (int, int list) Hashtbl.t;  (* representative -> cell members *)
  }

  let rec find parent i = if parent.(i) = i then i else find parent parent.(i)

  let union parent a b =
    let ra = find parent a and rb = find parent b in
    if ra <> rb then parent.(ra) <- rb

  let make fact ~group ~time =
    let tree = Fact.tree fact in
    let n = Tree.n_runs tree in
    let alive run = Tree.run_length tree run > time in
    let beliefs = Hashtbl.create 64 in
    let parent = Array.init n Fun.id in
    List.iter
      (fun agent ->
        let keys =
          List.filter
            (fun k -> Tree.lkey_time k = time)
            (Tree.lstates tree ~agent)
        in
        List.iter
          (fun key ->
            let cell = Tree.lstate_runs tree key in
            let belief = Belief.degree_at_lstate fact key in
            let first = ref (-1) in
            Bitset.iter
              (fun run ->
                Hashtbl.replace beliefs (agent, run) belief;
                if !first = -1 then first := run else union parent !first run)
              cell)
          keys)
      group;
    let cell_repr =
      Array.init n (fun run -> if alive run then find parent run else -1)
    in
    let members = Hashtbl.create 32 in
    Array.iteri
      (fun run repr ->
        if repr >= 0 then
          Hashtbl.replace members repr
            (run :: (Option.value ~default:[] (Hashtbl.find_opt members repr))))
      cell_repr;
    { time; beliefs; cell_repr; members }

  let profile t ~group run = List.map (fun agent -> (agent, Hashtbl.find t.beliefs (agent, run))) group

  let premise_holds t ~group run =
    (* The agents' belief profile is common knowledge iff it is
       constant on the meet cell. *)
    t.cell_repr.(run) >= 0
    &&
    let mine = profile t ~group run in
    List.for_all
      (fun run' -> profile t ~group run' = mine)
      (Hashtbl.find t.members t.cell_repr.(run))
end

let check_group = function
  | [] -> invalid_arg "Aumann: empty group"
  | g -> List.sort_uniq compare g

let common_knowledge_of_beliefs fact ~group ~run ~time =
  let group = check_group group in
  let slice = Slice.make fact ~group ~time in
  Slice.premise_holds slice ~group run

let report_of slice ~group ~run ~time =
  let beliefs = Slice.profile slice ~group run in
  let equal =
    match beliefs with
    | [] -> true
    | (_, first) :: rest -> List.for_all (fun (_, v) -> Q.equal v first) rest
  in
  { run; time; beliefs; equal }

let check_point fact ~group ~run ~time =
  let group = check_group group in
  let slice = Slice.make fact ~group ~time in
  if Slice.premise_holds slice ~group run then Some (report_of slice ~group ~run ~time)
  else None

let check fact ~group =
  let group = check_group group in
  let tree = Fact.tree fact in
  let max_time =
    let m = ref 0 in
    for run = 0 to Tree.n_runs tree - 1 do
      m := max !m (Tree.run_length tree run - 1)
    done;
    !m
  in
  List.concat_map
    (fun time ->
      let slice = Slice.make fact ~group ~time in
      let acc = ref [] in
      for run = Tree.n_runs tree - 1 downto 0 do
        if Tree.run_length tree run > time && Slice.premise_holds slice ~group run then
          acc := report_of slice ~group ~run ~time :: !acc
      done;
      !acc)
    (List.init (max_time + 1) Fun.id)

let disagreement_points fact ~group =
  check fact ~group
  |> List.filter_map (fun r -> if r.equal then None else Some (r.run, r.time))

(* ------------------------------------------------------------------ *)
(* Monderer–Samet p-agreement                                          *)
(* ------------------------------------------------------------------ *)

type p_agreement = {
  p_run : int;
  p_time : int;
  p : Q.t;
  p_beliefs : (int * Q.t) list;
  spread : Q.t;
  bound : Q.t;
  within_bound : bool;
}

let p_agreement_slice fact ~group ~p ~time =
  let tree = Fact.tree fact in
  let n = Tree.n_runs tree in
  let alive run = Tree.run_length tree run > time in
  let slice = Slice.make fact ~group ~time in
  (* Per agent, the information cell of each alive run at this time. *)
  let cell agent run = Tree.lstate_runs tree (Tree.lkey tree ~agent ~run ~time) in
  (* p-belief of a run set Y at run r for one agent. *)
  let p_believes agent y run =
    let c = cell agent run in
    Q.geq (Tree.cond tree (Bitset.inter y c) ~given:c) p
  in
  (* Common p-belief of S (as a run set) = gfp X. E^p(S) ∧ E^p(X). *)
  let common_p_belief s =
    let base =
      Bitset.filter
        (fun run -> alive run && List.for_all (fun i -> p_believes i s run) group)
        (Tree.all_runs tree)
    in
    let x = ref base in
    let stable = ref false in
    while not !stable do
      let x' =
        Bitset.filter
          (fun run -> List.for_all (fun i -> p_believes i !x run) group)
          base
      in
      if Bitset.equal x' !x then stable := true else x := x'
    done;
    !x
  in
  (* Group the alive runs by belief profile and evaluate each profile's
     common p-belief event once. *)
  let profiles = Hashtbl.create 16 in
  for run = 0 to n - 1 do
    if alive run then begin
      let prof = Slice.profile slice ~group run in
      Hashtbl.replace profiles prof
        (Bitset.add
           (Option.value ~default:(Tree.empty_event tree) (Hashtbl.find_opt profiles prof))
           run)
    end
  done;
  Hashtbl.fold
    (fun prof members acc ->
      let ck = common_p_belief members in
      let values = List.map snd prof in
      let spread =
        match values with
        | [] -> Q.zero
        | v :: rest ->
          let mx = List.fold_left Q.max v rest and mn = List.fold_left Q.min v rest in
          Q.sub mx mn
      in
      let bound = Q.mul (Q.of_int 2) (Q.one_minus p) in
      Bitset.fold
        (fun run acc ->
          if Bitset.mem ck run then
            { p_run = run;
              p_time = time;
              p;
              p_beliefs = prof;
              spread;
              bound;
              within_bound = Q.leq spread bound
            }
            :: acc
          else acc)
        members acc)
    profiles []

let p_agreement fact ~group ~p =
  if not (Q.gt p Q.half && Q.leq p Q.one) then
    invalid_arg "Aumann.p_agreement: p must lie in (1/2, 1]";
  let group = check_group group in
  let tree = Fact.tree fact in
  let max_time =
    let m = ref 0 in
    for run = 0 to Tree.n_runs tree - 1 do
      m := max !m (Tree.run_length tree run - 1)
    done;
    !m
  in
  List.concat_map
    (fun time -> List.rev (p_agreement_slice fact ~group ~p ~time))
    (List.init (max_time + 1) Fun.id)

let p_disagreements fact ~group ~p =
  p_agreement fact ~group ~p
  |> List.filter_map (fun r -> if r.within_bound then None else Some (r.p_run, r.p_time))
