(** Actions in a pps: occurrence, properness, determinism.

    Actions are identified by their string label together with the agent
    performing them (the paper assumes the sets [Act_i] are disjoint;
    here the agent index is explicit instead). [does_i(α)] holds at
    [(r,t)] iff the edge from [r(t)] to [r(t+1)] records [α] as agent
    [i]'s action; no action is performed at a run's final point.

    An action is {e proper} (Section 3.1) when the agent performs it at
    least once in the tree and at most once in every run. Properness is
    what makes [ϕ@α] a well-defined fact about runs; the operations in
    {!Belief} and {!Constr} that need it raise {!Not_proper} otherwise. *)

exception Not_proper of string
(** Raised when an operation requiring a proper action is applied to an
    action that is not proper; the payload describes the action. *)

val occurrences : Tree.t -> agent:int -> act:string -> (int * int) list
(** All points [(run, time)] at which the agent performs the action. *)

val runs_performing : Tree.t -> agent:int -> act:string -> Bitset.t
(** The event [R_α]: runs in which the action is performed at least
    once. *)

val count_in_run : Tree.t -> agent:int -> act:string -> run:int -> int

val time_performed : Tree.t -> agent:int -> act:string -> run:int -> int option
(** Time of the first occurrence in the run, if any. For a proper
    action this is the unique occurrence. *)

val is_performed : Tree.t -> agent:int -> act:string -> bool
val is_proper : Tree.t -> agent:int -> act:string -> bool

val check_proper : Tree.t -> agent:int -> act:string -> unit
(** @raise Not_proper if the action is not proper for the agent. *)

val is_deterministic : Tree.t -> agent:int -> act:string -> bool
(** Whether [does_i(α)] is a deterministic function of the local state:
    any two points with the same local state agree on whether the agent
    performs the action (Section 4). *)

val performing_lstates : Tree.t -> agent:int -> act:string -> Tree.lkey list
(** [L_i[α]]: local states at which the agent ever performs the action. *)

val performed_at_lstate : Tree.t -> agent:int -> act:string -> Tree.lkey -> Bitset.t
(** The event [α@ℓ]: runs in which the agent performs the action while
    in the given local state. *)
