(** The explicit epistemic Kripke structure of a pps.

    Worlds are the points of the system; agent [i]'s accessibility
    relation links points the agent cannot distinguish — those sharing
    [i]'s local state. Because local states partition points, each
    relation is an equivalence (an S5 frame); the synchrony assumption
    makes every class live at a single time. Each world carries the
    prior measure of its run, which is what turns this S5 frame into
    the {e probabilistic} Kripke structure in which [β_i] is evaluated.

    This module exists for interoperability and inspection: the
    {!Pak_pps.Belief} and {!Pak_logic} layers compute over the tree
    directly, and the test suite uses the extracted frame to verify the
    S5 properties they silently rely on. *)

open Pak_rational

type t
type world = int

val of_tree : Tree.t -> t
val tree : t -> Tree.t
val n_worlds : t -> int

val world_point : t -> world -> int * int
(** The (run, time) behind a world. *)

val point_world : t -> run:int -> time:int -> world

val world_measure : t -> world -> Q.t
(** The prior measure of the world's run. *)

val accessible : t -> agent:int -> world -> world list
(** All worlds the agent considers possible at [world] (including
    itself), in increasing world order. *)

val equivalence_classes : t -> agent:int -> world list list
(** The information partition of agent [i]; each class is one local
    state's set of points. *)

val is_equivalence : t -> agent:int -> bool
(** Reflexive, symmetric and transitive — true for every agent of every
    pps; exported so tests can assert the S5 frame property. *)

val synchronous : t -> bool
(** Every equivalence class of every agent lives at a single time. *)

val knows : t -> agent:int -> Fact.t -> world -> bool
(** [K_i ϕ] at the world: ϕ holds at every accessible world. Agrees
    with the logic layer's [Knows]. *)

val posterior : t -> agent:int -> Fact.t -> world -> Q.t
(** [β_i(ϕ)] at the world, computed from the frame: the measure-weighted
    fraction of the agent's accessible worlds satisfying ϕ. Agrees with
    {!Pak_pps.Belief.degree}. *)

val to_dot : t -> agent:int -> string
(** Graphviz rendering of the agent's information partition. *)
