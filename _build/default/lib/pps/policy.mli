(** Belief-threshold policy improvement (the Section 8 discussion).

    Theorem 6.2 implies that whenever an agent acts while holding a low
    degree of belief in the constraint's condition, it drags down
    [µ(ϕ@α | α)]; by refraining from acting at those local states the
    agent improves the conditional success probability. This module
    computes the effect of such a restriction {e derived from the
    original system} — e.g. the paper's improved firing squad
    (µ rises from 99/100 to 990/991) falls out of
    [restrict ~min_belief:(1/2)] applied to the {e original} FS tree.

    The restriction models the protocol variant where the agent
    performs α only at local states whose belief in ϕ meets
    [min_belief] and skips elsewhere. Probabilities are computed by
    conditioning the original measure on the kept states, which is
    exactly the modified protocol's conditional success probability
    when ϕ is local-state independent of α. *)

open Pak_rational

type restriction = {
  kept : Tree.lkey list;     (** performing states with belief ≥ min_belief *)
  dropped : Tree.lkey list;  (** performing states the policy now skips *)
  original_mu : Q.t;                  (** µ(ϕ@α | α) in the original system *)
  restricted_mu : Q.t option;
      (** µ(ϕ@α | α at a kept state); [None] when every performing
          state is dropped (the action is never performed anymore) *)
  original_action_measure : Q.t;      (** µ(R_α) *)
  restricted_action_measure : Q.t;    (** µ(α performed at a kept state) *)
}

val restrict : Fact.t -> agent:int -> act:string -> min_belief:Q.t -> restriction
(** @raise Action.Not_proper if the action is not proper. *)

val best : Fact.t -> agent:int -> act:string -> Q.t
(** The best conditional success probability achievable by any
    belief-threshold restriction: the maximum belief over the
    performing local states. An upper bound on [restricted_mu] for
    every threshold. *)

val frontier : Fact.t -> agent:int -> act:string -> (Q.t * Q.t * Q.t) list
(** The achievable (threshold, µ, action measure) frontier: one entry
    per distinct belief level β among the performing states, giving the
    restriction at [min_belief = β]. Sorted by increasing threshold;
    µ is nondecreasing along it while the action measure shrinks. *)

val pp_restriction : Format.formatter -> restriction -> unit
