(** Aumann's agreement theorem on pps ("agreeing to disagree",
    cited as [5] in the paper).

    A pps induces a common prior [µ_T] for all agents, and each agent's
    degree of belief is its posterior given its local state. Aumann's
    theorem then applies: if, at a point, the {e values} of two agents'
    posteriors in a fact are common knowledge between them, those
    values are equal — rational agents with a common prior cannot agree
    to disagree.

    The checker works pointwise: at a point [(r,t)] it tests whether
    "agent i's belief in ϕ equals its actual current value [qᵢ]" is
    common knowledge in the group, for every agent, and if so compares
    the values. A report is produced per point where the premise holds. *)

open Pak_rational

type agreement = {
  run : int;
  time : int;
  beliefs : (int * Q.t) list;  (** per agent, its posterior at the point *)
  equal : bool;                (** all posteriors coincide *)
}

val common_knowledge_of_beliefs :
  Fact.t -> group:int list -> run:int -> time:int -> bool
(** Whether every group member's current degree of belief in the fact
    is common knowledge in the group at the point (each value as an
    exact rational). *)

val check_point : Fact.t -> group:int list -> run:int -> time:int -> agreement option
(** [Some report] when the beliefs are common knowledge at the point
    (the theorem asserts [report.equal] is then true); [None] when the
    premise fails. *)

val check : Fact.t -> group:int list -> agreement list
(** All points where the premise holds, with their reports. Aumann's
    theorem asserts [equal = true] in every returned report; the
    property suite verifies this on random systems. *)

val disagreement_points : Fact.t -> group:int list -> (int * int) list
(** Points violating the theorem — always empty; exposed so tests state
    the theorem positively. *)

(** {1 Monderer–Samet p-agreement}

    Monderer and Samet (1989) relaxed Aumann's premise: if at a point
    the agents' posterior {e values} in ϕ are merely {e common
    p-belief} (everyone p-believes them, everyone p-believes that,
    …), then the values need not be equal but can differ by at most
    [2(1−p)]. *)

type p_agreement = {
  p_run : int;
  p_time : int;
  p : Q.t;
  p_beliefs : (int * Q.t) list;
  spread : Q.t;        (** max − min of the posteriors *)
  bound : Q.t;         (** 2(1−p) *)
  within_bound : bool;
}

val p_agreement : Fact.t -> group:int list -> p:Q.t -> p_agreement list
(** One report per point where the belief profile is common p-belief
    (computed as the greatest fixpoint of everyone-p-believes on each
    synchronous time slice). The theorem asserts [within_bound] in
    every report.
    @raise Invalid_argument unless [1/2 < p ≤ 1] (the theorem's
    regime; below 1/2 the bound is vacuous anyway). *)

val p_disagreements : Fact.t -> group:int list -> p:Q.t -> (int * int) list
(** Points violating the bound — always empty. *)
