
type t = { tree : Tree.t; table : bool array array (* [run].(time) *) }

let tree t = t.tree

let of_pred tree pred =
  let table =
    Array.init (Tree.n_runs tree) (fun run ->
        Array.init (Tree.run_length tree run) (fun time -> pred ~run ~time))
  in
  { tree; table }

let of_state_pred tree pred =
  (* Memoize per node: a state predicate has one value per node. *)
  let cache = Array.make (Tree.n_nodes tree) None in
  of_pred tree (fun ~run ~time ->
      let node = Tree.run_node tree ~run ~time in
      match cache.(node) with
      | Some v -> v
      | None ->
        let v = pred (Tree.node_state tree node) in
        cache.(node) <- Some v;
        v)

let of_run_pred tree pred =
  let per_run = Array.init (Tree.n_runs tree) pred in
  of_pred tree (fun ~run ~time:_ -> per_run.(run))

let tt tree = of_pred tree (fun ~run:_ ~time:_ -> true)
let ff tree = of_pred tree (fun ~run:_ ~time:_ -> false)

let does tree ~agent ~act =
  of_pred tree (fun ~run ~time ->
      match Tree.action_at tree ~agent ~run ~time with
      | Some a -> a = act
      | None -> false)

let does_env tree ~act =
  of_pred tree (fun ~run ~time ->
      match Tree.env_action_at tree ~run ~time with Some a -> a = act | None -> false)

let local_label_is tree ~agent ~label =
  of_state_pred tree (fun g -> Gstate.local g agent = label)

let check_same a b =
  if Tree.tree_id a.tree <> Tree.tree_id b.tree then
    invalid_arg "Fact: combining facts from different trees"

let map2 f a b =
  check_same a b;
  { tree = a.tree;
    table = Array.init (Array.length a.table) (fun run ->
        Array.init (Array.length a.table.(run)) (fun time ->
            f a.table.(run).(time) b.table.(run).(time)))
  }

let map1 f a =
  { tree = a.tree;
    table = Array.map (Array.map f) a.table }

let not_ a = map1 not a
let and_ a b = map2 ( && ) a b
let or_ a b = map2 ( || ) a b
let implies a b = map2 (fun x y -> (not x) || y) a b
let iff a b = map2 ( = ) a b

let conj tree = List.fold_left and_ (tt tree)
let disj tree = List.fold_left or_ (ff tree)

let holds t ~run ~time =
  if run < 0 || run >= Array.length t.table then invalid_arg "Fact.holds: unknown run";
  let row = t.table.(run) in
  if time < 0 || time >= Array.length row then
    invalid_arg "Fact.holds: time out of range for run";
  row.(time)

let eventually a =
  let per_run = Array.map (Array.exists Fun.id) a.table in
  { tree = a.tree;
    table = Array.mapi (fun run row -> Array.map (fun _ -> per_run.(run)) row) a.table }

let globally a =
  let per_run = Array.map (Array.for_all Fun.id) a.table in
  { tree = a.tree;
    table = Array.mapi (fun run row -> Array.map (fun _ -> per_run.(run)) row) a.table }

let once a =
  { tree = a.tree;
    table =
      Array.map
        (fun row ->
          let acc = ref false in
          Array.map (fun v -> acc := !acc || v; !acc) row)
        a.table }

let historically a =
  { tree = a.tree;
    table =
      Array.map
        (fun row ->
          let acc = ref true in
          Array.map (fun v -> acc := !acc && v; !acc) row)
        a.table }

let next a =
  { tree = a.tree;
    table =
      Array.map
        (fun row ->
          let n = Array.length row in
          Array.init n (fun time -> time + 1 < n && row.(time + 1)))
        a.table }

let at_time tree k a =
  if Tree.tree_id tree <> Tree.tree_id a.tree then
    invalid_arg "Fact.at_time: fact from a different tree";
  of_run_pred tree (fun run -> k < Array.length a.table.(run) && a.table.(run).(k))

let is_about_runs t =
  Array.for_all
    (fun row -> Array.length row = 0 || Array.for_all (fun v -> v = row.(0)) row)
    t.table

let is_past_based t =
  (* Two runs agree up to time [time] iff they pass through the same
     node; so past-based = constant on the runs through each node. *)
  let tr = t.tree in
  let result = ref true in
  Tree.iter_points tr (fun ~run ~time ->
      if !result then begin
        let node = Tree.run_node tr ~run ~time in
        let v = t.table.(run).(time) in
        if
          Bitset.exists (fun run' -> t.table.(run').(time) <> v) (Tree.node_runs tr node)
        then result := false
      end);
  !result

let event_of_run_fact t =
  if not (is_about_runs t) then
    invalid_arg "Fact.event_of_run_fact: fact is not a fact about runs";
  let ev = ref (Tree.empty_event t.tree) in
  Array.iteri
    (fun run row -> if Array.length row > 0 && row.(0) then ev := Bitset.add !ev run)
    t.table;
  !ev

let at_lstate t key =
  let tr = t.tree in
  let time = Tree.lkey_time key in
  Bitset.filter (fun run -> t.table.(run).(time)) (Tree.lstate_runs tr key)

let and_action_at_lstate t ~agent ~act key =
  Bitset.inter (at_lstate t key) (Action.performed_at_lstate t.tree ~agent ~act key)

let at_action t ~agent ~act =
  Action.check_proper t.tree ~agent ~act;
  let ev = ref (Tree.empty_event t.tree) in
  List.iter
    (fun (run, time) -> if t.table.(run).(time) then ev := Bitset.add !ev run)
    (Action.occurrences t.tree ~agent ~act);
  !ev

let prob t ev = Tree.measure t.tree ev

let pp fmt t =
  Format.fprintf fmt "@[<hov 1>{";
  let first = ref true in
  Array.iteri
    (fun run row ->
      Array.iteri
        (fun time v ->
          if v then begin
            if not !first then Format.fprintf fmt ";@ ";
            first := false;
            Format.fprintf fmt "(r%d,t%d)" run time
          end)
        row)
    t.table;
  Format.fprintf fmt "}@]"
