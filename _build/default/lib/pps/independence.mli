(** Local-state independence (paper, Definition 4.1).

    A fact ϕ is local-state independent of a proper action α of agent
    [i] in [T] when, for every local state [ℓ_i] of [i],

    {v µ(ϕ@ℓ | ℓ) · µ(α@ℓ | ℓ) = µ([ϕ∧α]@ℓ | ℓ). v}

    Intuitively: whether ϕ holds at a local state is independent of
    whether α is chosen there. This is the hypothesis of Theorems 4.2
    and 6.2; it holds whenever α is deterministic or ϕ is past-based
    (Lemma 4.3), and can fail for mixed actions and future-dependent
    facts (Figure 1). *)

open Pak_rational

type failure = {
  lstate : Tree.lkey;
  belief : Q.t;      (** µ(ϕ@ℓ | ℓ) *)
  act_prob : Q.t;    (** µ(α@ℓ | ℓ) *)
  joint : Q.t;       (** µ([ϕ∧α]@ℓ | ℓ) *)
}
(** A local state at which the product rule fails, with both sides. *)

val failures : Fact.t -> agent:int -> act:string -> failure list
(** All local states of the agent violating Definition 4.1 (empty iff
    the fact is local-state independent of the action). *)

val holds : Fact.t -> agent:int -> act:string -> bool

val pp_failure : Format.formatter -> failure -> unit
