(** Probabilistic constraints (paper, Definition 3.2).

    A probabilistic constraint on a proper action α in a pps [T] is a
    statement [µ_T(ϕ@α | α) ≥ p]: when the agent performs α, the
    condition ϕ should hold with probability at least the threshold
    [p]. For facts about runs this reduces to [µ_T(ϕ | α) ≥ p]. *)

open Pak_rational

type t = {
  agent : int;
  act : string;
  fact : Fact.t;
  threshold : Q.t;
}

val make : agent:int -> act:string -> fact:Fact.t -> threshold:Q.t -> t
(** @raise Invalid_argument if the threshold is not a probability.
    @raise Action.Not_proper if the action is not proper in the fact's
    tree. *)

val mu_given_action : Fact.t -> agent:int -> act:string -> Q.t
(** [µ_T(ϕ@α | α)], the left-hand side of a probabilistic constraint.
    @raise Action.Not_proper if the action is not proper.
    @raise Division_by_zero if the action is never performed. *)

val holds : t -> bool
(** Whether the constraint is satisfied (exact comparison). *)

type report = {
  constr : t;
  mu : Q.t;               (** µ(ϕ@α | α) *)
  action_measure : Q.t;   (** µ(R_α) *)
  satisfied : bool;
  independent : bool;     (** Definition 4.1 for this (ϕ, α) *)
}

val report : t -> report
val pp_report : Format.formatter -> report -> unit
