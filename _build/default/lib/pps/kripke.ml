open Pak_rational

type world = int

type t = {
  tree : Tree.t;
  points : (int * int) array; (* world -> (run, time) *)
  index : (int * int, int) Hashtbl.t; (* (run, time) -> world *)
  classes : (Tree.lkey, world list) Hashtbl.t; (* members in increasing order *)
}

let of_tree tree =
  let points =
    Tree.fold_points tree ~init:[] ~f:(fun acc ~run ~time -> (run, time) :: acc)
    |> List.rev |> Array.of_list
  in
  let index = Hashtbl.create (Array.length points) in
  Array.iteri (fun w pt -> Hashtbl.add index pt w) points;
  let classes = Hashtbl.create 64 in
  Array.iteri
    (fun w (run, time) ->
      for agent = 0 to Tree.n_agents tree - 1 do
        let key = Tree.lkey tree ~agent ~run ~time in
        let prev = match Hashtbl.find_opt classes key with Some l -> l | None -> [] in
        Hashtbl.replace classes key (w :: prev)
      done)
    points;
  (* store members in increasing order *)
  Hashtbl.iter (fun k l -> Hashtbl.replace classes k (List.rev l)) classes;
  { tree; points; index; classes }

let tree t = t.tree
let n_worlds t = Array.length t.points

let world_point t w =
  if w < 0 || w >= Array.length t.points then invalid_arg "Kripke.world_point: bad world";
  t.points.(w)

let point_world t ~run ~time =
  match Hashtbl.find_opt t.index (run, time) with
  | Some w -> w
  | None -> invalid_arg "Kripke.point_world: no such point"

let world_measure t w =
  let run, _ = world_point t w in
  Tree.run_measure t.tree run

let class_of t ~agent w =
  let run, time = world_point t w in
  let key = Tree.lkey t.tree ~agent ~run ~time in
  match Hashtbl.find_opt t.classes key with Some l -> l | None -> [ w ]

let accessible t ~agent w = class_of t ~agent w

let equivalence_classes t ~agent =
  Hashtbl.fold
    (fun key members acc -> if Tree.lkey_agent key = agent then members :: acc else acc)
    t.classes []
  |> List.sort compare

let is_equivalence t ~agent =
  (* The relation is an equivalence iff every member of a class sees
     exactly that class: this single condition gives reflexivity (the
     member is in its class), symmetry and transitivity at once, and
     avoids the cubic pairwise checks. *)
  List.for_all
    (fun members ->
      List.for_all
        (fun w ->
          let acc = accessible t ~agent w in
          acc == members || acc = members)
        members)
    (equivalence_classes t ~agent)

let synchronous t =
  Hashtbl.fold
    (fun _key members acc ->
      acc
      &&
      match members with
      | [] -> true
      | w :: rest ->
        let _, time = world_point t w in
        List.for_all (fun v -> snd (world_point t v) = time) rest)
    t.classes true

let knows t ~agent fact w =
  List.for_all
    (fun v ->
      let run, time = world_point t v in
      Fact.holds fact ~run ~time)
    (accessible t ~agent w)

let posterior t ~agent fact w =
  let members = accessible t ~agent w in
  let total = Q.sum (List.map (world_measure t) members) in
  let hit =
    Q.sum
      (List.filter_map
         (fun v ->
           let run, time = world_point t v in
           if Fact.holds fact ~run ~time then Some (world_measure t v) else None)
         members)
  in
  Q.div hit total

let to_dot t ~agent =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph kripke_agent%d {\n  rankdir=LR;\n" agent);
  Array.iteri
    (fun w (run, time) ->
      Buffer.add_string buf
        (Printf.sprintf "  w%d [label=\"(r%d,t%d)\\n%s\"];\n" w run time
           (Q.to_string (world_measure t w))))
    t.points;
  List.iter
    (fun members ->
      let rec edges = function
        | [] | [ _ ] -> ()
        | w :: (v :: _ as rest) ->
          Buffer.add_string buf (Printf.sprintf "  w%d -- w%d;\n" w v);
          edges rest
      in
      edges members)
    (equivalence_classes t ~agent);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
