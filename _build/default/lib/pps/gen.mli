(** Deterministic random generation of purely probabilistic systems,
    facts and actions, for property-based tests and benchmarks.

    All generation is a pure function of the [seed], so failures are
    reproducible. Action labels embed the tree depth at which they can
    occur, which makes every generated action proper by construction
    (it is performed at most once per run). *)

type params = {
  n_agents : int;
  depth : int;            (** length of the longest runs *)
  max_branching : int;    (** children per internal node: 1..max_branching *)
  label_alphabet : int;   (** distinct local-state labels per depth *)
  act_alphabet : int;     (** distinct action labels per agent per depth *)
  max_weight : int;       (** probability granularity: weights in 1..max_weight *)
  early_stop_pct : int;   (** percent chance a non-initial node is a leaf early *)
  deterministic_acts : bool;
      (** make every agent action a function of the agent's local state
          (Lemma 4.3(a) situations); forces uniform depth *)
}

val default_params : params
(** 2 agents, depth 3, small alphabets — a few dozen runs per tree. *)

val tree : ?params:params -> int -> Tree.t
(** A {e protocol-consistent} random pps: each agent's action
    distribution is a memoized function of its local state, as produced
    by a probabilistic protocol [P_i : L_i → ∆(Act_i)] (Section 2.2);
    the environment's distribution is free per node; runs have uniform
    length [depth]. This is the class of systems the paper's lemmas
    quantify over — in particular Lemma 4.3(b) holds on these trees but
    can fail on arbitrary ones. [early_stop_pct] is ignored. *)

val tree_arbitrary : ?params:params -> int -> Tree.t
(** An arbitrary random pps: per-node edge probabilities and per-edge
    action labels, with early leaves ([early_stop_pct]). Not
    necessarily protocol-consistent; useful for measure-level
    properties and for exhibiting failures of protocol-class lemmas.
    [deterministic_acts] is ignored. *)

val past_based_fact : Tree.t -> seed:int -> Fact.t
(** A random fact constant on the runs through each node — past-based
    by construction (Lemma 4.3(b) situations). *)

val transient_fact : Tree.t -> seed:int -> Fact.t
(** A random point predicate; generally {e not} past-based. *)

val run_fact : Tree.t -> seed:int -> Fact.t
(** A random fact about runs. *)

val proper_actions : Tree.t -> (int * string) list
(** All (agent, action) pairs that are proper in the tree, sorted. *)

val pick_proper_action : Tree.t -> seed:int -> (int * string) option
(** A pseudo-random proper action of the tree, if any exists. *)
