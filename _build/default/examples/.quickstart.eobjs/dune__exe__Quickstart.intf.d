examples/quickstart.mli:
