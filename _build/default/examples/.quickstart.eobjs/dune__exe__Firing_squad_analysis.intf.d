examples/firing_squad_analysis.mli:
