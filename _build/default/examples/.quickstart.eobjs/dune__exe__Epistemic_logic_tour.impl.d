examples/epistemic_logic_tour.ml: Fact Formula Gstate Pak Parser Printf Q Semantics String Systems Tree
