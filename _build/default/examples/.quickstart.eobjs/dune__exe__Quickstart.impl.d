examples/quickstart.ml: Belief Bitset Fact Format Formula Gstate List Pak Parser Printf Q Semantics Tree
