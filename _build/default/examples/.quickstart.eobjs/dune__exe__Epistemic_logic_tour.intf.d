examples/epistemic_logic_tour.mli:
