examples/tooling_tour.mli:
