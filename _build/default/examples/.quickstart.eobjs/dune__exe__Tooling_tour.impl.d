examples/tooling_tour.ml: Action Aumann Belief Fact Kripke List Pak Policy Printf Q Simulate Systems Tree Tree_io
