examples/judge_reasonable_doubt.mli:
