examples/firing_squad_analysis.ml: List Pak Printf Q Systems Theorems
