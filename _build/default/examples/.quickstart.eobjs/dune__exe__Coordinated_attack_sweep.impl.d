examples/coordinated_attack_sweep.ml: List Pak Printf Q Systems
