examples/judge_reasonable_doubt.ml: List Pak Printf Q String Systems Theorems
