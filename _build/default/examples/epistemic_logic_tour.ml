(* A tour of the probabilistic epistemic logic over the firing squad.

   Parses formulas from their concrete syntax and model-checks them on
   the compiled FS system: knowledge, graded belief, group knowledge
   and Monderer–Samet common belief.

   Run with: dune exec examples/epistemic_logic_tour.exe *)

open Pak
module FS = Systems.Firing_squad

let () =
  let t = FS.tree FS.Original in
  (* Atoms over FS global states. Alice's label is
     "go<b>_heard_<yes|no|none>", Bob's is "got<k>". *)
  let valuation atom g =
    match atom with
    | "go" -> String.length (Gstate.local g 0) >= 3 && (Gstate.local g 0).[2] = '1'
    | "bob_got_msg" -> Gstate.local g 1 <> "got0"
    | _ -> false
  in
  let check description formula_text =
    let f = Parser.parse formula_text in
    Printf.printf "%-58s %b\n" (description ^ ":") (Semantics.valid t ~valuation f)
  in
  Printf.printf "Model: compiled FS protocol (%d runs). Agents: 0 = Alice, 1 = Bob.\n\n"
    (Tree.n_runs t);
  Printf.printf "%-58s %s\n" "formula (valid at every point?)" "result";
  check "Alice always knows her own bit" "go -> K[0] go";
  check "Bob does not always know Alice's bit" "K[1] go | K[1] !go";
  check "firing implies go" "does[0](fire) -> go";
  check "Alice knows go when she fires" "does[0](fire) -> K[0] go";
  check "Alice is sure Bob fires when she hears 'Yes'"
    "does[0](fire) & P bob_got_msg & K[0] F does[1](fire) -> B[0]=1 F does[1](fire)";
  (* The FS anomaly from the paper: Alice sometimes fires while certain
     Bob is NOT firing (she heard 'No'), so the threshold formula is
     not valid even though the probabilistic constraint is satisfied. *)
  check "Alice always 0.9-believes Bob heard, when firing (anomaly!)"
    "does[0](fire) -> B[0]>=9/10 bob_got_msg";
  let anomaly = Parser.parse "does[0](fire) & B[0]=0 bob_got_msg" in
  let anomaly_measure = Semantics.probability t ~valuation (Formula.Eventually anomaly) in
  Printf.printf "%-58s %s\n"
    "P(Alice fires while certain Bob heard nothing):"
    (Q.to_decimal_string anomaly_measure);
  check "knowledge implies certainty" "K[0] bob_got_msg -> B[0]=1 bob_got_msg";
  check "everyone-knows implies individual knowledge" "E[0,1] go -> K[1] go";
  check "go never becomes common knowledge" "!C[0,1] go";
  check "common belief implies everyone-believes" "CB[0,1]>=3/4 go -> EB[0,1]>=3/4 go";

  (* Pointwise evaluation: where exactly does Alice 0.99-believe that
     Bob fires? *)
  let f = Parser.parse "B[0]>=99/100 F does[1](fire)" in
  let fact = Semantics.eval t ~valuation f in
  let count =
    Tree.fold_points t ~init:0 ~f:(fun acc ~run ~time ->
        if Fact.holds fact ~run ~time then acc + 1 else acc)
  in
  Printf.printf "\npoints where Alice 0.99-believes Bob will fire: %d of %d\n" count
    (Tree.n_points t);

  (* Probability of a run-level formula. *)
  let agree = Parser.parse "F does[0](fire) <-> F does[1](fire)" in
  Printf.printf "P(Alice fires iff Bob fires) = %s\n"
    (Q.to_decimal_string (Semantics.probability t ~valuation agree))
