(* Quickstart: build a tiny purely probabilistic system by hand,
   compute an agent's beliefs, state a probabilistic constraint, and
   run the paper's theorem checkers on it.

   The system: a sensor (agent 1) observes weather that is "storm"
   with probability 1/3 and reports it to a controller (agent 0); the
   report is garbled with probability 1/4 (the controller then reads
   "unknown"). At time 1 the controller launches iff the report did
   not read "storm". The probabilistic constraint: when launching, the
   weather should be clear with probability at least 2/3.

   Run with: dune exec examples/quickstart.exe *)

open Pak

let () =
  (* 1. Build the pps: an initial distribution plus two rounds. *)
  let b = Tree.Builder.create ~n_agents:2 in
  let third = Q.of_ints 1 3 in
  let storm = Tree.Builder.add_initial b ~prob:third (Gstate.of_labels "w" [ "c0"; "storm" ]) in
  let clear =
    Tree.Builder.add_initial b ~prob:(Q.one_minus third)
      (Gstate.of_labels "w" [ "c0"; "clear" ])
  in
  let ok = Q.of_ints 3 4 in
  let report parent ~weather =
    let mk ~prob ~env ~read =
      Tree.Builder.add_child b ~parent ~prob ~acts:[| env; "wait"; "report" |]
        (Gstate.of_labels "w" [ "read_" ^ read; weather ])
    in
    (mk ~prob:ok ~env:"ok" ~read:weather, mk ~prob:(Q.one_minus ok) ~env:"garble" ~read:"unknown")
  in
  let s_ok, s_garbled = report storm ~weather:"storm" in
  let c_ok, c_garbled = report clear ~weather:"clear" in
  (* At time 1 the controller launches unless it read "storm". *)
  List.iter
    (fun (node, weather, launches) ->
      let act = if launches then "launch" else "hold" in
      ignore
        (Tree.Builder.add_child b ~parent:node ~prob:Q.one ~acts:[| "tick"; act; "wait" |]
           (Gstate.of_labels "w" [ "done"; weather ])))
    [ (s_ok, "storm", false);
      (s_garbled, "storm", true);
      (c_ok, "clear", true);
      (c_garbled, "clear", true)
    ];
  let tree = Tree.Builder.finalize b in
  Printf.printf "Built a pps with %d nodes, %d runs, %d points.\n" (Tree.n_nodes tree)
    (Tree.n_runs tree) (Tree.n_points tree);

  (* 2. Facts and beliefs. *)
  let clear_fact = Fact.of_state_pred tree (fun g -> Gstate.local g 1 = "clear") in
  List.iter
    (fun label ->
      let key = Tree.lkey_make ~agent:0 ~time:1 ~label in
      if not (Bitset.is_empty (Tree.lstate_runs tree key)) then
        Printf.printf "controller belief in 'clear' at %-13s = %s\n" label
          (Q.to_decimal_string (Belief.degree_at_lstate clear_fact key)))
    [ "read_storm"; "read_clear"; "read_unknown" ];

  (* 3. The probabilistic constraint µ(clear@launch | launch) >= 2/3,
     and everything the paper proves about it. *)
  let analysis =
    analyze_constraint ~fact:clear_fact ~agent:0 ~act:"launch" ~threshold:(Q.of_ints 2 3)
  in
  Format.printf "%a@." pp_constraint_analysis analysis;

  (* 4. The same question asked in the logic layer. *)
  let valuation atom g = atom = "clear" && Gstate.local g 1 = "clear" in
  let formula = Parser.parse "does[0](launch) -> B[0]>=2/3 clear" in
  Printf.printf "\"%s\" valid: %b\n" (Formula.to_string formula)
    (Semantics.valid tree ~valuation formula)
