(* A tour of the supporting tooling around the core theory:

   - Policy: the Section 8 belief-threshold improvement, derived from
     the original FS protocol rather than re-implemented;
   - Belief.distribution_at_action: Definition 6.1 made inspectable;
   - Aumann: no agreeing to disagree under the common prior of a pps;
   - Simulate: Monte-Carlo cross-check of the exact measures;
   - Tree_io / Kripke: serialization and the extracted S5 frame.

   Run with: dune exec examples/tooling_tour.exe *)

open Pak
module FS = Systems.Firing_squad

let dec q = Q.to_decimal_string q

let () =
  let t = FS.tree FS.Original in
  let fireb = FS.fire_b_fact t in

  (* 1. The distribution of Alice's belief at firing time. *)
  Printf.printf "Distribution of β_A(fire_B)@fire_A (Definition 6.1):\n";
  Printf.printf "%-22s %-14s %-10s\n" "information state" "weight" "belief";
  List.iter
    (fun (key, w, b) ->
      Printf.printf "%-22s %-14s %-10s\n" (Tree.lkey_label key) (Q.to_string w) (dec b))
    (Belief.distribution_at_action fireb ~agent:FS.alice ~act:FS.fire);
  let expected = Belief.expected_at_action fireb ~agent:FS.alice ~act:FS.fire in
  Printf.printf "expectation = %s  (= µ(fire_B@fire_A | fire_A), Theorem 6.2)\n\n" (dec expected);

  (* 2. Section 8 as policy improvement on the ORIGINAL system. *)
  Printf.printf "Belief-threshold frontier (Section 8):\n";
  Printf.printf "%-12s %-22s %-16s\n" "threshold" "µ(ϕ@α | α)" "µ(still fires)";
  List.iter
    (fun (thr, mu, mass) ->
      Printf.printf "%-12s %-22s %-16s\n" (Q.to_string thr) (dec mu) (Q.to_string mass))
    (Policy.frontier fireb ~agent:FS.alice ~act:FS.fire);
  let r = Policy.restrict fireb ~agent:FS.alice ~act:FS.fire ~min_belief:Q.half in
  Printf.printf "skip on 'No' => µ = %s — the paper's 0.99899\n\n"
    (match r.Policy.restricted_mu with Some m -> Q.to_string m | None -> "-");

  (* 3. Aumann: agents with the common prior µ_T cannot agree to
     disagree about fire_B. *)
  let disagreements = Aumann.disagreement_points fireb ~group:[ FS.alice; FS.bob ] in
  let agreements = Aumann.check fireb ~group:[ FS.alice; FS.bob ] in
  Printf.printf
    "Aumann: %d points where belief values are common knowledge, 0 disagreements (%b)\n\n"
    (List.length agreements)
    (disagreements = []);

  (* 4. Monte-Carlo cross-check of the headline number. *)
  let given = Action.runs_performing t ~agent:FS.alice ~act:FS.fire in
  let event = Fact.at_action (FS.phi_both t) ~agent:FS.alice ~act:FS.fire in
  (match Simulate.estimate_cond t ~event ~given ~samples:50_000 ~seed:2026 with
   | Some est ->
     Printf.printf "Simulation: µ(ϕ_both | fire_A) ≈ %s (exact 0.99) from 50k samples\n\n"
       (dec est)
   | None -> ());

  (* 5. Serialization round-trip and the Kripke frame. *)
  let t' = Tree_io.of_string (Tree_io.to_string t) in
  Printf.printf "Serialization round-trip: %d runs -> %d runs, total measure %s\n"
    (Tree.n_runs t) (Tree.n_runs t')
    (Q.to_string (Tree.measure t' (Tree.all_runs t')));
  let k = Kripke.of_tree t in
  Printf.printf
    "Kripke frame: %d worlds; S5 for Alice: %b; S5 for Bob: %b; synchronous: %b\n"
    (Kripke.n_worlds k)
    (Kripke.is_equivalence k ~agent:FS.alice)
    (Kripke.is_equivalence k ~agent:FS.bob)
    (Kripke.synchronous k);
  Printf.printf "Alice's information partition has %d cells\n"
    (List.length (Kripke.equivalence_classes k ~agent:FS.alice))
