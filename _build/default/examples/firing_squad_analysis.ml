(* Example 1 of the paper, end to end: the relaxed firing squad.

   Reproduces every number in the example and in the Section 8
   discussion, then sweeps the message-loss probability to show where
   the specification threshold 0.95 stops being met.

   Run with: dune exec examples/firing_squad_analysis.exe *)

open Pak
module FS = Systems.Firing_squad

let dec q = Q.to_decimal_string q

let print_variant name variant =
  let a = FS.analyze variant in
  Printf.printf "--- %s protocol ---\n" name;
  Printf.printf "µ(ϕ_both@fire_A | fire_A)      = %s  (%s)\n"
    (Q.to_string a.FS.mu_both_given_fire_a) (dec a.FS.mu_both_given_fire_a);
  Printf.printf "spec  µ ≥ 0.95 satisfied       = %b\n" a.FS.spec_satisfied;
  let pr name = function
    | Some b -> Printf.printf "Alice's β(fire_B) on %-9s = %s\n" name (dec b)
    | None -> Printf.printf "Alice's β(fire_B) on %-9s = (she does not fire there)\n" name
  in
  pr "'Yes'" a.FS.belief_heard_yes;
  pr "nothing" a.FS.belief_heard_nothing;
  pr "'No'" a.FS.belief_heard_no;
  Printf.printf "µ(β ≥ 0.95 | fire_A)           = %s  (%s)\n"
    (Q.to_string a.FS.threshold_met_measure) (dec a.FS.threshold_met_measure);
  Printf.printf "E(β@fire_A | fire_A)           = %s   — equals µ, Theorem 6.2\n"
    (Q.to_string a.FS.expected_belief);
  Printf.printf "local-state independence       = %b\n\n" a.FS.independent

let () =
  Printf.printf "Relaxed firing squad (Example 1): loss = 0.1, P(go=1) = 0.5\n\n";
  print_variant "FS (original)" FS.Original;
  print_variant "Improved (Section 8: skip on 'No')" FS.Improved;

  (* PAK in action (Corollary 7.2): with ε = 1/10, µ = 0.99 ≥ 1 − ε²,
     so Alice must assign belief ≥ 0.9 with probability ≥ 0.9. *)
  let t = FS.tree FS.Original in
  let r =
    Theorems.pak_corollary (FS.phi_both t) ~agent:FS.alice ~act:FS.fire ~eps:(Q.of_ints 1 10)
  in
  Printf.printf "PAK (Corollary 7.2, ε = 1/10): µ(β ≥ 0.9 | fire_A) = %s ≥ 0.9: %b\n\n"
    (dec r.Theorems.strong_belief_measure) r.Theorems.conclusion;

  Printf.printf "--- loss sweep (original FS) ---\n";
  Printf.printf "%-8s %-12s %-10s %-12s\n" "loss" "µ(both|A)" "spec?" "µ(β≥.95|A)";
  List.iter
    (fun (n, d) ->
      let loss = Q.of_ints n d in
      let a = FS.analyze ~loss FS.Original in
      Printf.printf "%-8s %-12s %-10b %-12s\n"
        (Q.to_string loss)
        (dec a.FS.mu_both_given_fire_a)
        a.FS.spec_satisfied
        (dec a.FS.threshold_met_measure))
    [ (1, 100); (1, 20); (1, 10); (3, 20); (1, 5); (1, 4); (1, 2) ]
