(* Beyond a reasonable doubt: the judge system.

   A defendant is guilty with prior 1/2; the judge sees n noisy
   evidence signals (accuracy 0.9) and convicts iff at least m are
   incriminating. The paper's probabilistic constraint reads: a
   convicted defendant should be guilty with probability at least p.
   This example shows the conviction-bar tradeoff, the judge's exact
   posteriors when convicting, and the PAK corollary at work.

   Run with: dune exec examples/judge_reasonable_doubt.exe *)

open Pak
module J = Systems.Judge

let dec q = Q.to_decimal_string q

let () =
  let rounds = 4 in
  Printf.printf "Judge with %d evidence signals, accuracy 0.9, prior guilt 0.5\n\n" rounds;
  Printf.printf "%-4s %-22s %-30s\n" "m" "µ(guilty | convict)" "posterior at each inc-count";
  List.iter
    (fun convict_at ->
      let a = J.analyze ~rounds ~convict_at () in
      let posteriors =
        a.J.posterior_by_count
        |> List.map (fun (c, b) -> Printf.sprintf "inc=%d:%s" c (dec b))
        |> String.concat "  "
      in
      Printf.printf "%-4d %-22s %-30s\n" convict_at (dec a.J.mu_guilty_given_convict) posteriors)
    [ 1; 2; 3; 4 ];

  (* Theorem 6.2 on each configuration: the expected posterior when
     convicting equals the conditional guilt probability. *)
  Printf.printf "\nTheorem 6.2 check (E[β@convict | convict] = µ): %b\n"
    (List.for_all
       (fun m ->
         let a = J.analyze ~rounds ~convict_at:m () in
         Q.equal a.J.mu_guilty_given_convict a.J.expected_belief)
       [ 1; 2; 3; 4 ]);

  (* PAK: convicting on unanimous evidence gives µ = 6561/6562. With
     ε = 1/81, µ ≥ 1 − ε² and so µ(β ≥ 1−ε | convict) ≥ 1−ε. *)
  let t = J.tree ~rounds ~convict_at:rounds () in
  let eps = Q.of_ints 1 81 in
  let r = Theorems.pak_corollary (J.guilty_fact t) ~agent:J.judge ~act:J.convict ~eps in
  Printf.printf "\nPAK at m = %d with ε = 1/81:\n" rounds;
  Printf.printf "  µ(guilty | convict)   = %s\n" (dec r.Theorems.mu);
  Printf.printf "  premise µ ≥ 1 − ε²    = %b\n" r.Theorems.premise;
  Printf.printf "  µ(β ≥ 1−ε | convict)  = %s ≥ %s: %b\n"
    (dec r.Theorems.strong_belief_measure)
    (dec (Q.one_minus eps))
    r.Theorems.conclusion;

  (* The "balance of probabilities" civil standard (p = 1/2) versus
     "beyond reasonable doubt": which conviction bars satisfy which? *)
  Printf.printf "\nStandards satisfied per conviction bar m (rounds = %d):\n" rounds;
  Printf.printf "%-4s %-24s %-24s\n" "m" "balance (µ ≥ 0.5)" "reasonable doubt (µ ≥ 0.99)";
  List.iter
    (fun m ->
      let a = J.analyze ~rounds ~convict_at:m () in
      let mu = a.J.mu_guilty_given_convict in
      Printf.printf "%-4d %-24b %-24b\n" m (Q.geq mu Q.half) (Q.geq mu (Q.of_ints 99 100)))
    [ 1; 2; 3; 4 ]
