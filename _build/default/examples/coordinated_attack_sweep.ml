(* Coordinated attack over a lossy channel: the PAK frontier.

   For each number of rounds k, the constraint value is
   µ(ϕ_both@attack_A | attack_A) = 1 − loss^k. Writing it as 1 − ε²,
   Corollary 7.2 promises µ(β ≥ 1 − ε | attack_A) ≥ 1 − ε. The sweep
   prints the promise next to the exactly-measured value.

   Run with: dune exec examples/coordinated_attack_sweep.exe *)

open Pak
module CA = Systems.Coordinated_attack

let dec q = Q.to_decimal_string q

let () =
  Printf.printf "Coordinated attack: A sends every round; B acks once heard.\n";
  Printf.printf "loss = 0.1 per message, P(go) = 0.5\n\n";
  Printf.printf "%-3s %-14s %-14s %-14s %-10s\n" "k" "µ(both|A)" "β no-ack" "β with-ack" "E[β] = µ?";
  List.iter
    (fun rounds ->
      let a = CA.analyze ~rounds () in
      Printf.printf "%-3d %-14s %-14s %-14s %-10b\n" rounds
        (dec a.CA.mu_both_given_attack_a)
        (dec a.CA.belief_no_ack)
        (match a.CA.belief_with_ack with Some b -> dec b | None -> "-")
        (Q.equal a.CA.mu_both_given_attack_a a.CA.expected_belief))
    [ 1; 2; 3; 4 ];

  (* PAK frontier: for k rounds µ = 1 − loss^k; pick ε = sqrt(loss^k)
     when k is even so that µ = 1 − ε² exactly. *)
  Printf.printf "\nPAK frontier (Corollary 7.2), loss = 1/10:\n";
  Printf.printf "%-3s %-10s %-18s %-18s %-9s\n" "k" "ε" "promise ≥ 1−ε" "measured µ(β≥1−ε)" "holds";
  List.iter
    (fun (rounds, eps) ->
      let a = CA.analyze ~rounds () in
      let measured = a.CA.threshold_met_measure (Q.one_minus eps) in
      Printf.printf "%-3d %-10s %-18s %-18s %-9b\n" rounds (Q.to_string eps)
        (dec (Q.one_minus eps))
        (dec measured)
        (Q.geq measured (Q.one_minus eps)))
    [ (2, Q.of_ints 1 10); (4, Q.of_ints 1 100) ];

  (* The loss sweep at fixed k = 2. *)
  Printf.printf "\nloss sweep at k = 2:\n";
  Printf.printf "%-8s %-14s %-14s\n" "loss" "µ(both|A)" "β no-ack";
  List.iter
    (fun (n, d) ->
      let a = CA.analyze ~loss:(Q.of_ints n d) ~rounds:2 () in
      Printf.printf "%-8s %-14s %-14s\n"
        (Q.to_string (Q.of_ints n d))
        (dec a.CA.mu_both_given_attack_a)
        (dec a.CA.belief_no_ack))
    [ (1, 100); (1, 20); (1, 10); (1, 5); (1, 2) ]
