(* Tests for the protocol layer: lossy network substrate and the
   joint-protocol-to-pps compiler. *)

open Pak_rational
open Pak_dist
open Pak_pps
open Pak_protocol

let q = Q.of_ints
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_q msg expected actual =
  Alcotest.(check string) msg (Q.to_string expected) (Q.to_string actual)

(* ------------------------------------------------------------------ *)
(* Network                                                             *)
(* ------------------------------------------------------------------ *)

let test_network_patterns () =
  let m1 = Network.msg ~src:0 ~dst:1 "m1" in
  let m2 = Network.msg ~src:0 ~dst:1 "m2" in
  let d = Network.delivery_patterns ~loss:(q 1 10) [ m1; m2 ] in
  check_int "four patterns" 4 (Dist.size d);
  check_q "both delivered" (q 81 100) (Dist.prob d [ m1; m2 ]);
  check_q "both lost" (q 1 100) (Dist.prob d []);
  check_q "first only" (q 9 100) (Dist.prob d [ m1 ]);
  check_q "at least one" (q 99 100) (Dist.prob_pred d (fun p -> p <> []));
  (* Example 1's numbers drop out of the substrate directly. *)
  check_q "mass" Q.one (Dist.total_mass d)

let test_network_edge_cases () =
  let m = Network.msg ~src:1 ~dst:0 "ack" in
  check_bool "no loss is dirac" true
    (Dist.is_deterministic (Network.delivery_patterns ~loss:Q.zero [ m ]));
  check_bool "certain loss is dirac" true
    (Dist.is_deterministic (Network.delivery_patterns ~loss:Q.one [ m ]));
  check_bool "no messages" true
    (Dist.is_deterministic (Network.delivery_patterns ~loss:(q 1 10) []));
  Alcotest.check_raises "bad loss"
    (Invalid_argument "Network.delivery_patterns: loss must be a probability") (fun () ->
      ignore (Network.delivery_patterns ~loss:(q 3 2) [ m ]))

let test_network_labels () =
  let m1 = Network.msg ~src:0 ~dst:1 "m1" in
  let ack = Network.msg ~src:1 ~dst:0 "ack" in
  Alcotest.(check string) "label" "deliver{0>1:m1,1>0:ack}"
    (Network.pattern_label [ m1; ack ]);
  Alcotest.(check string) "empty label" "deliver{}" (Network.pattern_label []);
  check_int "delivered filter" 1 (List.length (Network.delivered [ m1; ack ] ~dst:0))

(* ------------------------------------------------------------------ *)
(* Compiler                                                            *)
(* ------------------------------------------------------------------ *)

(* A tiny two-round, one-agent coin protocol: the agent flips a fair
   coin each round and records the history of outcomes. *)
let coin_spec ~horizon : (unit, string, string) Protocol.spec =
  { n_agents = 1;
    horizon;
    init = [ (((), [| "" |]), Q.one) ];
    env_protocol = (fun ~time:_ () -> Dist.return "tick");
    agent_protocol = (fun ~agent:_ ~time:_ _ -> Dist.uniform [ "heads"; "tails" ]);
    transition =
      (fun ~time:_ ((), locals) _ acts -> ((), [| locals.(0) ^ String.make 1 acts.(0).[0] |]));
    halts = (fun ~time:_ _ -> false);
    env_label = (fun () -> "e");
    agent_label = (fun ~agent:_ s -> if s = "" then "start" else s);
    act_label = Fun.id
  }

let test_compile_coin () =
  let t = Protocol.compile (coin_spec ~horizon:2) in
  check_int "agents" 1 (Tree.n_agents t);
  check_int "runs" 4 (Tree.n_runs t);
  check_q "uniform runs" (q 1 4) (Tree.run_measure t 0);
  check_q "total" Q.one (Tree.measure t (Tree.all_runs t));
  check_int "nodes 1 + 2 + 4" 7 (Tree.n_nodes t);
  check_int "count_nodes agrees" 7 (Protocol.count_nodes (coin_spec ~horizon:2));
  (* The history local state distinguishes all outcomes at time 2. *)
  check_int "four time-2 lstates" 4
    (List.length
       (List.filter (fun k -> Tree.lkey_time k = 2) (Tree.lstates t ~agent:0)));
  (* Protocol-compiled trees are protocol-consistent by construction. *)
  check_int "consistent" 0 (List.length (Tree.check_protocol_consistency t))

let test_compile_halting () =
  (* Halt as soon as the first flip is heads. *)
  let spec =
    { (coin_spec ~horizon:3) with
      halts = (fun ~time:_ ((), locals) -> String.length locals.(0) > 0 && locals.(0).[0] = 'h')
    }
  in
  let t = Protocol.compile spec in
  (* Runs: h (length 2), t-h, t-t-h, t-t-t... heads after the first
     tails keeps going to horizon: t then anything (4 runs of length 4
     truncated by halts on heads at time >= 1? The halt checks the
     prefix's first char only, so only runs starting with h stop. *)
  let lengths = List.init (Tree.n_runs t) (fun r -> Tree.run_length t r) in
  check_bool "some run halted early" true (List.mem 2 lengths);
  check_bool "some run full length" true (List.mem 4 lengths);
  check_q "measure preserved" Q.one (Tree.measure t (Tree.all_runs t))

let test_compile_validation () =
  Alcotest.check_raises "bad init mass"
    (Invalid_argument "Protocol.compile: initial probabilities sum to 1/2, not 1")
    (fun () ->
      ignore
        (Protocol.compile { (coin_spec ~horizon:1) with init = [ (((), [| "" |]), Q.half) ] }));
  Alcotest.check_raises "bad horizon"
    (Invalid_argument "Protocol.compile: horizon must be at least 1") (fun () ->
      ignore (Protocol.compile (coin_spec ~horizon:0)));
  (* Colliding action labels within a support are rejected by the
     builder as duplicate joint actions. *)
  let bad =
    { (coin_spec ~horizon:1) with
      act_label = (fun _ -> "same")
    }
  in
  Alcotest.check_raises "label collision"
    (Invalid_argument "Tree.Builder.add_child: duplicate joint action at this node")
    (fun () -> ignore (Protocol.compile bad))

let test_compile_mixed_beliefs () =
  (* Two agents: agent 0 flips a coin; agent 1 observes nothing. Agent
     1's belief in "agent 0 flipped heads" must be 1/2 at time 1, while
     agent 0 knows the outcome. *)
  let spec : (unit, string, string) Protocol.spec =
    { n_agents = 2;
      horizon = 1;
      init = [ (((), [| "a"; "b" |]), Q.one) ];
      env_protocol = (fun ~time:_ () -> Dist.return "tick");
      agent_protocol =
        (fun ~agent ~time:_ _ ->
          if agent = 0 then Dist.uniform [ "heads"; "tails" ] else Dist.return "wait");
      transition = (fun ~time:_ ((), _) _ acts -> ((), [| acts.(0); "b" |]));
      halts = (fun ~time:_ _ -> false);
      env_label = (fun () -> "e");
      agent_label = (fun ~agent:_ s -> s);
      act_label = Fun.id
    }
  in
  let t = Protocol.compile spec in
  let heads = Fact.of_state_pred t (fun g -> Gstate.local g 0 = "heads") in
  check_q "observer belief 1/2" Q.half (Belief.degree heads ~agent:1 ~run:0 ~time:1);
  let flipper_belief run = Belief.degree heads ~agent:0 ~run ~time:1 in
  check_bool "flipper certain" true
    ((Q.equal (flipper_belief 0) Q.one && Q.is_zero (flipper_belief 1))
     || (Q.equal (flipper_belief 1) Q.one && Q.is_zero (flipper_belief 0)))

(* Cross-validation: the compiled FS tree and a hand-built T̂-style
   model agree with closed-form formulas on a parameter grid. *)
let test_compile_formula_agreement () =
  List.iter
    (fun (ln, ld) ->
      let loss = q ln ld in
      let deliver = Q.one_minus loss in
      let a = Pak_systems.Firing_squad.analyze ~loss Pak_systems.Firing_squad.Original in
      (* µ(both | fireA) = 1 - loss² (Bob misses both messages) *)
      check_q
        (Printf.sprintf "FS mu at loss %d/%d" ln ld)
        (Q.one_minus (Q.mul loss loss))
        a.Pak_systems.Firing_squad.mu_both_given_fire_a;
      (* threshold-met measure = 1 - loss²·deliver when beliefs at
         'nothing' meet 0.95, i.e. for small loss *)
      if Q.geq (Q.one_minus (Q.mul loss loss)) (q 19 20) then
        check_q
          (Printf.sprintf "FS met measure at loss %d/%d" ln ld)
          (Q.one_minus (Q.mul (Q.mul loss loss) deliver))
          a.Pak_systems.Firing_squad.threshold_met_measure)
    [ (1, 10); (1, 20); (1, 4); (1, 100) ]

let () =
  Alcotest.run "pak_protocol"
    [ ( "network",
        [ Alcotest.test_case "delivery patterns" `Quick test_network_patterns;
          Alcotest.test_case "edge cases" `Quick test_network_edge_cases;
          Alcotest.test_case "labels" `Quick test_network_labels
        ] );
      ( "compile",
        [ Alcotest.test_case "coin protocol" `Quick test_compile_coin;
          Alcotest.test_case "halting" `Quick test_compile_halting;
          Alcotest.test_case "validation" `Quick test_compile_validation;
          Alcotest.test_case "mixed beliefs" `Quick test_compile_mixed_beliefs;
          Alcotest.test_case "closed-form agreement" `Quick test_compile_formula_agreement
        ] )
    ]
