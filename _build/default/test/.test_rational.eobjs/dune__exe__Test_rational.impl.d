test/test_rational.ml: Alcotest Bigint Bignat Gen List Option Pak_rational Printf Q QCheck QCheck_alcotest String
