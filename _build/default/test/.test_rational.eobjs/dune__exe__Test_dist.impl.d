test/test_dist.ml: Alcotest Dist Gen List Pak_dist Pak_rational Q QCheck QCheck_alcotest
