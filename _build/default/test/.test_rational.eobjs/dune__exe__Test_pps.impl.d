test/test_pps.ml: Action Alcotest Belief Bitset Constr Fact Gen Gstate Independence List Pak_pps Pak_rational Printf Q QCheck QCheck_alcotest String Theorems Tree
