test/test_protocol.ml: Alcotest Array Belief Dist Fact Fun Gstate List Network Pak_dist Pak_pps Pak_protocol Pak_rational Pak_systems Printf Protocol Q String Tree
