test/test_logic.ml: Alcotest Array Belief Fact Formula Gen Gstate Hashtbl List Pak_logic Pak_pps Pak_rational Parser Printf Q QCheck QCheck_alcotest Semantics Tree
