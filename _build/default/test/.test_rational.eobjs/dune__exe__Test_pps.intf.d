test/test_pps.mli:
