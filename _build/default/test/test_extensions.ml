(* Tests for the extension modules: Jeffrey conditionalization, policy
   improvement (Section 8), Kripke extraction, Monte-Carlo simulation,
   tree serialization, modal axioms, formula simplification, and the
   ALOHA system. *)

open Pak_rational
open Pak_pps
open Pak_logic
open Pak_systems

let q = Q.of_ints
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_q msg expected actual =
  Alcotest.(check string) msg (Q.to_string expected) (Q.to_string actual)

let fs () = Firing_squad.tree Firing_squad.Original

(* ------------------------------------------------------------------ *)
(* Jeffrey conditionalization                                          *)
(* ------------------------------------------------------------------ *)

let test_jeffrey_partitions () =
  let t = fs () in
  let cells = Jeffrey.lstate_partition t ~agent:Firing_squad.alice ~time:2 in
  check_bool "lstate cells partition" true (Jeffrey.is_partition t cells);
  let acells = Jeffrey.action_partition t ~agent:Firing_squad.alice ~act:Firing_squad.fire in
  check_bool "action cells partition" true (Jeffrey.is_partition t acells);
  (* Alice at time 2 in go=1 runs: heard yes/none/no; in go=0 runs:
     heard no/none. Five positive cells, no dead cell (uniform depth). *)
  check_int "five lstate cells" 5 (List.length cells);
  check_bool "not a partition detector" false
    (Jeffrey.is_partition t [ Tree.all_runs t; Tree.all_runs t ])

let test_jeffrey_total_probability () =
  let t = fs () in
  let fireb = Action.runs_performing t ~agent:Firing_squad.bob ~act:Firing_squad.fire in
  let cells = Jeffrey.lstate_partition t ~agent:Firing_squad.alice ~time:2 in
  check_q "law of total probability" (Tree.measure t fireb)
    (Jeffrey.total_probability t ~cells ~event:fireb);
  (* Generalized version conditioned on R_alpha — the exact identity
     under Theorem 6.2's proof. *)
  let r_alpha = Action.runs_performing t ~agent:Firing_squad.alice ~act:Firing_squad.fire in
  let acells = Jeffrey.action_partition t ~agent:Firing_squad.alice ~act:Firing_squad.fire in
  check_q "generalized identity"
    (Tree.cond t fireb ~given:r_alpha)
    (Jeffrey.conditional_total_probability t ~cells:acells ~event:fireb ~given:r_alpha);
  Alcotest.check_raises "partition check"
    (Invalid_argument "Jeffrey.total_probability: cells do not partition the runs")
    (fun () -> ignore (Jeffrey.total_probability t ~cells:[ fireb ] ~event:fireb))

let prop_jeffrey_random =
  QCheck.Test.make ~count:100 ~name:"total probability on random systems"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let t = Gen.tree seed in
      let fact = Gen.run_fact t ~seed in
      let event = Fact.event_of_run_fact fact in
      List.for_all
        (fun time ->
          let cells = Jeffrey.lstate_partition t ~agent:0 ~time in
          Q.equal (Tree.measure t event) (Jeffrey.total_probability t ~cells ~event))
        [ 0; 1 ])

(* ------------------------------------------------------------------ *)
(* Policy improvement (Section 8)                                      *)
(* ------------------------------------------------------------------ *)

let test_policy_reproduces_section8 () =
  (* Restricting the ORIGINAL FS protocol to firing states with belief
     >= 1/2 drops exactly the 'No' state and yields the improved
     protocol's 990/991 — the paper's Section 8 number, derived rather
     than re-implemented. *)
  let t = fs () in
  let fireb = Firing_squad.fire_b_fact t in
  let r =
    Policy.restrict fireb ~agent:Firing_squad.alice ~act:Firing_squad.fire ~min_belief:Q.half
  in
  check_int "one state dropped" 1 (List.length r.Policy.dropped);
  Alcotest.(check string) "the 'No' state" "go1_heard_no"
    (Tree.lkey_label (List.hd r.Policy.dropped));
  check_q "original µ" (q 99 100) r.Policy.original_mu;
  check_bool "restricted µ = 990/991" true (r.Policy.restricted_mu = Some (q 990 991));
  check_q "action measure shrinks" (Q.mul Q.half (q 991 1000))
    r.Policy.restricted_action_measure

let test_policy_frontier () =
  let t = fs () in
  let fireb = Firing_squad.fire_b_fact t in
  let frontier = Policy.frontier fireb ~agent:Firing_squad.alice ~act:Firing_squad.fire in
  (* Belief levels when firing: 0 ('No'), 99/100 (nothing), 1 ('Yes'). *)
  check_int "three levels" 3 (List.length frontier);
  let mus = List.map (fun (_, mu, _) -> mu) frontier in
  check_bool "µ nondecreasing along frontier" true
    (List.for_all2 Q.leq
       (List.filteri (fun i _ -> i < List.length mus - 1) mus)
       (List.tl mus));
  (* Keeping only the certainty state gives µ = 1 = best. *)
  let _, best_mu, _ = List.nth frontier 2 in
  check_q "top of frontier" Q.one best_mu;
  check_q "best matches max belief" Q.one
    (Policy.best fireb ~agent:Firing_squad.alice ~act:Firing_squad.fire)

let test_policy_drop_all () =
  let t = fs () in
  let never = Fact.ff t in
  let r =
    Policy.restrict never ~agent:Firing_squad.alice ~act:Firing_squad.fire ~min_belief:Q.half
  in
  check_bool "nothing kept" true (r.Policy.kept = []);
  check_bool "no restricted µ" true (r.Policy.restricted_mu = None);
  check_q "zero action measure" Q.zero r.Policy.restricted_action_measure

let prop_policy_improves =
  QCheck.Test.make ~count:150 ~name:"restricting at µ never lowers µ (random systems)"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let tree = Gen.tree seed in
      match Gen.pick_proper_action tree ~seed with
      | None -> QCheck.assume_fail ()
      | Some (agent, act) ->
        let fact = Gen.past_based_fact tree ~seed in
        let mu = Constr.mu_given_action fact ~agent ~act in
        let r = Policy.restrict fact ~agent ~act ~min_belief:mu in
        (match r.Policy.restricted_mu with
         | None -> true (* everything dropped: vacuous *)
         | Some mu' -> Q.geq mu' mu))

let prop_policy_bounded_by_best =
  QCheck.Test.make ~count:150 ~name:"frontier µ bounded by best belief"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let tree = Gen.tree seed in
      match Gen.pick_proper_action tree ~seed with
      | None -> QCheck.assume_fail ()
      | Some (agent, act) ->
        let fact = Gen.past_based_fact tree ~seed in
        let best = Policy.best fact ~agent ~act in
        List.for_all (fun (_, mu, _) -> Q.leq mu best) (Policy.frontier fact ~agent ~act))

(* ------------------------------------------------------------------ *)
(* The executable appendix                                             *)
(* ------------------------------------------------------------------ *)

let test_appendix_lemma_a1 () =
  let t = fs () in
  let fireb = Firing_squad.fire_b_fact t in
  List.iter
    (fun key ->
      let r = Appendix.lemma_a1 fireb ~agent:Firing_squad.alice ~act:Firing_squad.fire key in
      check_bool "a" true r.Appendix.a;
      check_bool "b" true r.Appendix.b;
      check_bool "c" true r.Appendix.c;
      check_bool "d" true r.Appendix.d;
      check_bool "e" true r.Appendix.e)
    (Action.performing_lstates t ~agent:Firing_squad.alice ~act:Firing_squad.fire)

let test_appendix_lemma_b1 () =
  let t = fs () in
  let fireb = Firing_squad.fire_b_fact t in
  let rows = Appendix.lemma_b1 fireb ~agent:Firing_squad.alice ~act:Firing_squad.fire in
  check_int "three rows" 3 (List.length rows);
  List.iter
    (fun row ->
      check_bool
        (Printf.sprintf "B.1 at %s" (Tree.lkey_label row.Appendix.lstate))
        true row.Appendix.equal)
    rows

let test_appendix_thm62_chain () =
  let t = fs () in
  let fireb = Firing_squad.fire_b_fact t in
  let d = Appendix.theorem62 fireb ~agent:Firing_squad.alice ~act:Firing_squad.fire in
  check_bool "independent" true d.Appendix.independent;
  check_bool "chain (10)-(18)" true d.Appendix.chain_upto_18;
  check_bool "bridge (18)=(19)" true d.Appendix.bridge;
  check_bool "chain (19)-(23)" true d.Appendix.chain_19_on;
  check_q "(10) is the expectation" (q 99 100) d.Appendix.eq10;
  check_q "(23) is µ" (q 99 100) d.Appendix.eq23

let test_appendix_thm62_bridge_breaks () =
  (* Figure 1 with ϕ = does(α): the chain identities (10)-(18) and
     (19)-(23) hold unconditionally, and the failure of Theorem 6.2 is
     localized at the bridge step that uses Definition 4.1. *)
  let t1 = Pak_systems.Figure_one.tree () in
  let phi = Pak_systems.Figure_one.phi t1 in
  let d =
    Appendix.theorem62 phi ~agent:Pak_systems.Figure_one.agent
      ~act:Pak_systems.Figure_one.alpha
  in
  check_bool "not independent" false d.Appendix.independent;
  check_bool "chain (10)-(18) still holds" true d.Appendix.chain_upto_18;
  check_bool "chain (19)-(23) still holds" true d.Appendix.chain_19_on;
  check_bool "bridge breaks" false d.Appendix.bridge;
  check_q "(10) = E = 1/2" Q.half d.Appendix.eq10;
  check_q "(23) = µ = 1" Q.one d.Appendix.eq23

let prop_appendix_random =
  QCheck.Test.make ~count:80 ~name:"Appendix chains on random systems"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let tree = Gen.tree seed in
      match Gen.pick_proper_action tree ~seed with
      | None -> QCheck.assume_fail ()
      | Some (agent, act) ->
        let fact = Gen.transient_fact tree ~seed in
        let d = Appendix.theorem62 fact ~agent ~act in
        (* The two sub-chains are unconditional; the bridge must hold
           whenever Definition 4.1 does. *)
        d.Appendix.chain_upto_18 && d.Appendix.chain_19_on
        && ((not d.Appendix.independent) || d.Appendix.bridge)
        && List.for_all
             (fun key ->
               let r = Appendix.lemma_a1 fact ~agent ~act key in
               r.Appendix.a && r.Appendix.b && r.Appendix.c && r.Appendix.d && r.Appendix.e)
             (Action.performing_lstates tree ~agent ~act))

(* ------------------------------------------------------------------ *)
(* Reference engine agreement                                          *)
(* ------------------------------------------------------------------ *)

let test_reference_fs () =
  let t = fs () in
  let fireb = Firing_squad.fire_b_fact t in
  check_q "µ agrees" (q 99 100)
    (Reference.mu_phi_at_alpha_given_alpha fireb ~agent:Firing_squad.alice
       ~act:Firing_squad.fire);
  check_q "E agrees" (q 99 100)
    (Reference.expected_beta_at_alpha fireb ~agent:Firing_squad.alice ~act:Firing_squad.fire);
  check_bool "properness agrees" true
    (Reference.is_proper t ~agent:Firing_squad.alice ~act:Firing_squad.fire);
  check_bool "independence agrees" true
    (Reference.local_state_independent fireb ~agent:Firing_squad.alice ~act:Firing_squad.fire)

let prop_reference_beta =
  QCheck.Test.make ~count:40 ~name:"reference beta agrees with Belief.degree"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let tree = Gen.tree seed in
      QCheck.assume (Tree.n_runs tree <= 60);
      let fact = Gen.transient_fact tree ~seed in
      Tree.fold_points tree ~init:true ~f:(fun acc ~run ~time ->
          acc
          && Q.equal
               (Belief.degree fact ~agent:0 ~run ~time)
               (Reference.beta fact ~agent:0 ~run ~time)))

let prop_reference_engine =
  QCheck.Test.make ~count:40 ~name:"reference engine agrees on µ, E, properness, independence"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let tree = Gen.tree seed in
      QCheck.assume (Tree.n_runs tree <= 60);
      match Gen.pick_proper_action tree ~seed with
      | None -> QCheck.assume_fail ()
      | Some (agent, act) ->
        let fact = Gen.transient_fact tree ~seed in
        Reference.is_proper tree ~agent ~act = Action.is_proper tree ~agent ~act
        && Q.equal
             (Reference.mu_phi_at_alpha_given_alpha fact ~agent ~act)
             (Constr.mu_given_action fact ~agent ~act)
        && Q.equal
             (Reference.expected_beta_at_alpha fact ~agent ~act)
             (Belief.expected_at_action fact ~agent ~act)
        && Reference.local_state_independent fact ~agent ~act
           = Independence.holds fact ~agent ~act)

(* ------------------------------------------------------------------ *)
(* Monderer–Samet p-agreement                                          *)
(* ------------------------------------------------------------------ *)

let test_p_agreement_full_information () =
  (* Full-information flat system: posteriors are common knowledge,
     hence common p-belief for every p, with spread 0. *)
  let t =
    Monderer_samet.flat [ ([ "x0"; "y0" ], Q.half); ([ "x1"; "y1" ], Q.half) ]
  in
  let phi = Fact.of_state_pred t (fun g -> Gstate.local g 0 = "x1") in
  let reports = Aumann.p_agreement phi ~group:[ 0; 1 ] ~p:(q 9 10) in
  check_int "premise everywhere" 2 (List.length reports);
  List.iter
    (fun r ->
      check_q "spread 0" Q.zero r.Aumann.spread;
      check_bool "within bound" true r.Aumann.within_bound)
    reports

let test_p_agreement_guard () =
  let t = fs () in
  Alcotest.check_raises "p range"
    (Invalid_argument "Aumann.p_agreement: p must lie in (1/2, 1]") (fun () ->
      ignore (Aumann.p_agreement (Fact.tt t) ~group:[ 0; 1 ] ~p:(q 1 4)))

let prop_p_agreement_random =
  QCheck.Test.make ~count:40 ~name:"MS p-agreement bound on random systems"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let tree = Gen.tree seed in
      QCheck.assume (Tree.n_runs tree <= 120);
      let fact = Gen.past_based_fact tree ~seed in
      List.for_all
        (fun (pn, pd) ->
          Aumann.p_disagreements fact ~group:[ 0; 1 ] ~p:(q pn pd) = [])
        [ (3, 4); (9, 10); (1, 1) ])

(* ------------------------------------------------------------------ *)
(* Belief distribution at action                                       *)
(* ------------------------------------------------------------------ *)

let test_belief_distribution () =
  let t = fs () in
  let fireb = Firing_squad.fire_b_fact t in
  let dist = Belief.distribution_at_action fireb ~agent:Firing_squad.alice ~act:Firing_squad.fire in
  check_int "three information states" 3 (List.length dist);
  check_q "weights sum to 1" Q.one (Q.sum (List.map (fun (_, w, _) -> w) dist));
  (* Σ w·β reconstructs Definition 6.1's expectation. *)
  check_q "expectation reconstructed" (q 99 100)
    (Q.sum (List.map (fun (_, w, b) -> Q.mul w b) dist));
  let weight_of label =
    List.find_map
      (fun (k, w, _) -> if Tree.lkey_label k = label then Some w else None)
      dist
    |> Option.get
  in
  check_q "P(heard yes | fire)" (q 891 1000) (weight_of "go1_heard_yes");
  check_q "P(heard nothing | fire)" (q 1 10) (weight_of "go1_heard_none");
  check_q "P(heard no | fire)" (q 9 1000) (weight_of "go1_heard_no")

(* ------------------------------------------------------------------ *)
(* Aumann's agreement theorem                                          *)
(* ------------------------------------------------------------------ *)

let test_aumann_trivial_fact () =
  let t = fs () in
  (* Beliefs in a valid fact are 1 for everyone, which is trivially
     common knowledge: the premise holds at every point and agreement
     follows. *)
  let reports = Aumann.check (Fact.tt t) ~group:[ 0; 1 ] in
  check_int "premise everywhere" (Tree.n_points t) (List.length reports);
  check_bool "all agree" true (List.for_all (fun r -> r.Aumann.equal) reports)

let test_aumann_premise_fails () =
  (* In T̂, agent 1 knows the bit while agent 0's prior is 3/4; the
     belief values are not common knowledge at time 0, so no agreement
     claim is made there. *)
  let b = Tree.Builder.create ~n_agents:2 in
  let s0 = Tree.Builder.add_initial b ~prob:(q 1 4) (Gstate.of_labels "e" [ "i0"; "bit0" ]) in
  let s1 = Tree.Builder.add_initial b ~prob:(q 3 4) (Gstate.of_labels "e" [ "i0"; "bit1" ]) in
  ignore
    (Tree.Builder.add_child b ~parent:s0 ~prob:Q.one ~acts:[| "e"; "n"; "n" |]
       (Gstate.of_labels "e" [ "i1"; "bit0" ]));
  ignore
    (Tree.Builder.add_child b ~parent:s1 ~prob:Q.one ~acts:[| "e"; "n"; "n" |]
       (Gstate.of_labels "e" [ "i1"; "bit1" ]));
  let t = Tree.Builder.finalize b in
  let bit1 = Fact.of_state_pred t (fun g -> Gstate.local g 1 = "bit1") in
  check_bool "no CK of beliefs at t0" false
    (Aumann.common_knowledge_of_beliefs bit1 ~group:[ 0; 1 ] ~run:0 ~time:0);
  check_bool "check_point none" true
    (Aumann.check_point bit1 ~group:[ 0; 1 ] ~run:0 ~time:0 = None);
  (* The theorem is never violated. *)
  check_bool "no disagreement" true (Aumann.disagreement_points bit1 ~group:[ 0; 1 ] = [])

let test_aumann_full_information () =
  (* A flat system where both agents' labels reveal the world: beliefs
     are 0/1, commonly known, and equal at every point. *)
  let t =
    Monderer_samet.flat
      [ ([ "x0"; "y0" ], Q.half); ([ "x1"; "y1" ], q 1 4); ([ "x2"; "y2" ], q 1 4) ]
  in
  let phi = Fact.of_state_pred t (fun g -> Gstate.local g 0 = "x1") in
  let reports = Aumann.check phi ~group:[ 0; 1 ] in
  check_int "premise at all three worlds" 3 (List.length reports);
  check_bool "agreement everywhere" true (List.for_all (fun r -> r.Aumann.equal) reports)

let prop_aumann_random =
  QCheck.Test.make ~count:60 ~name:"no agreeing to disagree on random systems"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let t = Gen.tree seed in
      let fact = Gen.past_based_fact t ~seed in
      Aumann.disagreement_points fact ~group:[ 0; 1 ] = []
      && Aumann.disagreement_points (Fact.tt t) ~group:[ 0; 1 ] = [])

(* ------------------------------------------------------------------ *)
(* Kripke extraction                                                   *)
(* ------------------------------------------------------------------ *)

let test_kripke_structure () =
  let t = fs () in
  let k = Kripke.of_tree t in
  check_int "worlds = points" (Tree.n_points t) (Kripke.n_worlds k);
  check_bool "S5 frame for Alice" true (Kripke.is_equivalence k ~agent:0);
  check_bool "S5 frame for Bob" true (Kripke.is_equivalence k ~agent:1);
  check_bool "synchronous classes" true (Kripke.synchronous k);
  (* point <-> world round trip *)
  let w = Kripke.point_world k ~run:3 ~time:1 in
  check_bool "round trip" true (Kripke.world_point k w = (3, 1));
  check_q "world measure" (Tree.run_measure t 3) (Kripke.world_measure k w)

let test_kripke_agrees_with_layers () =
  let t = fs () in
  let k = Kripke.of_tree t in
  let fireb = Firing_squad.fire_b_fact t in
  let ok_knows = ref true and ok_post = ref true in
  Tree.iter_points t (fun ~run ~time ->
      let w = Kripke.point_world k ~run ~time in
      for agent = 0 to 1 do
        let expected_post = Belief.degree fireb ~agent ~run ~time in
        if not (Q.equal expected_post (Kripke.posterior k ~agent fireb w)) then
          ok_post := false;
        let layer_knows =
          Bitset.for_all
            (fun run' -> Fact.holds fireb ~run:run' ~time)
            (Tree.lstate_runs t (Tree.lkey t ~agent ~run ~time))
        in
        if layer_knows <> Kripke.knows k ~agent fireb w then ok_knows := false
      done);
  check_bool "posterior agrees with Belief.degree" true !ok_post;
  check_bool "knows agrees with partition" true !ok_knows;
  check_bool "dot mentions worlds" true
    (String.length (Kripke.to_dot k ~agent:0) > 100)

let prop_kripke_s5_random =
  QCheck.Test.make ~count:80 ~name:"Kripke frames of random systems are synchronous S5"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let t = Gen.tree seed in
      let k = Kripke.of_tree t in
      Kripke.is_equivalence k ~agent:0
      && Kripke.is_equivalence k ~agent:1
      && Kripke.synchronous k
      && List.for_all
           (fun cls -> cls <> [])
           (Kripke.equivalence_classes k ~agent:0))

(* ------------------------------------------------------------------ *)
(* Simulation                                                          *)
(* ------------------------------------------------------------------ *)

let test_simulate_deterministic () =
  let t = fs () in
  let a = Simulate.sample_runs t ~samples:50 ~seed:11 in
  let b = Simulate.sample_runs t ~samples:50 ~seed:11 in
  check_bool "same seed, same samples" true (a = b);
  let c = Simulate.sample_runs t ~samples:50 ~seed:12 in
  check_bool "different seed differs" true (a <> c);
  check_int "sample count" 50 (Array.length a);
  Array.iter (fun r -> check_bool "valid run index" true (r >= 0 && r < Tree.n_runs t)) a

let test_simulate_converges () =
  let t = fs () in
  let ev = Action.runs_performing t ~agent:Firing_squad.bob ~act:Firing_squad.fire in
  let exact = Tree.measure t ev in
  let samples = 20_000 in
  let est = Simulate.estimate t ~event:ev ~samples ~seed:7 in
  let err = abs_float (Q.to_float est -. Q.to_float exact) in
  let se = Simulate.standard_error ~p:exact ~samples in
  check_bool
    (Printf.sprintf "within 5 standard errors (err %.5f, se %.5f)" err se)
    true (err < (5. *. se) +. 0.001)

let test_simulate_conditional () =
  let t = fs () in
  let fire_a = Action.runs_performing t ~agent:Firing_squad.alice ~act:Firing_squad.fire in
  let both = Fact.at_action (Firing_squad.phi_both t) ~agent:Firing_squad.alice ~act:Firing_squad.fire in
  let exact = Tree.cond t both ~given:fire_a in
  (match Simulate.estimate_cond t ~event:both ~given:fire_a ~samples:20_000 ~seed:3 with
   | None -> Alcotest.fail "no conditional samples"
   | Some est ->
     let err = abs_float (Q.to_float est -. Q.to_float exact) in
     check_bool (Printf.sprintf "conditional converges (err %.5f)" err) true (err < 0.02));
  (* Impossible conditioning yields None. *)
  check_bool "empty given" true
    (Simulate.estimate_cond t ~event:both ~given:(Tree.empty_event t) ~samples:100 ~seed:1
     = None)

let prop_simulate_random_trees =
  QCheck.Test.make ~count:20 ~name:"simulation matches measure on random systems"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let t = Gen.tree seed in
      let fact = Gen.run_fact t ~seed in
      let ev = Fact.event_of_run_fact fact in
      let exact = Tree.measure t ev in
      let samples = 4_000 in
      let est = Simulate.estimate t ~event:ev ~samples ~seed in
      abs_float (Q.to_float est -. Q.to_float exact)
      < (5. *. Simulate.standard_error ~p:exact ~samples) +. 0.005)

(* ------------------------------------------------------------------ *)
(* Tree serialization                                                  *)
(* ------------------------------------------------------------------ *)

let trees_observationally_equal t1 t2 =
  Tree.n_agents t1 = Tree.n_agents t2
  && Tree.n_nodes t1 = Tree.n_nodes t2
  && Tree.n_runs t1 = Tree.n_runs t2
  && List.for_all
       (fun run ->
         Tree.run_length t1 run = Tree.run_length t2 run
         && Q.equal (Tree.run_measure t1 run) (Tree.run_measure t2 run)
         && List.for_all
              (fun time ->
                Gstate.equal
                  (Tree.node_state t1 (Tree.run_node t1 ~run ~time))
                  (Tree.node_state t2 (Tree.run_node t2 ~run ~time))
                && List.for_all
                     (fun agent ->
                       Tree.action_at t1 ~agent ~run ~time
                       = Tree.action_at t2 ~agent ~run ~time)
                     (List.init (Tree.n_agents t1) Fun.id))
              (List.init (Tree.run_length t1 run) Fun.id))
       (List.init (Tree.n_runs t1) Fun.id)

let test_tree_io_roundtrip () =
  let t = fs () in
  let t2 = Tree_io.of_string (Tree_io.to_string t) in
  check_bool "FS round trip" true (trees_observationally_equal t t2);
  (* Labels with quotes and backslashes survive. *)
  let b = Tree.Builder.create ~n_agents:1 in
  ignore (Tree.Builder.add_initial b ~prob:Q.one (Gstate.of_labels "e\"x\\y" [ "l \"quoted\"" ]));
  let t3 = Tree.Builder.finalize b in
  let t4 = Tree_io.of_string (Tree_io.to_string t3) in
  check_bool "escapes round trip" true (trees_observationally_equal t3 t4)

let test_tree_io_errors () =
  let fails s =
    match Tree_io.of_string s with
    | exception Tree_io.Parse_error _ -> true
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check_bool "garbage" true (fails "nonsense");
  check_bool "unterminated" true (fails "(pps (agents 1)");
  check_bool "bad prob" true (fails "(pps (agents 1) (node (parent -1) (prob x) (acts) (env \"e\") (locals \"a\")))");
  check_bool "missing fields" true (fails "(pps (agents 1) (node (parent -1)))");
  check_bool "invariant violation (mass)" true
    (fails "(pps (agents 1) (node (parent -1) (prob 1/2) (acts) (env \"e\") (locals \"a\")))")

let prop_tree_io_random =
  QCheck.Test.make ~count:60 ~name:"serialization round trip on random systems"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let t = Gen.tree seed in
      trees_observationally_equal t (Tree_io.of_string (Tree_io.to_string t)))

(* ------------------------------------------------------------------ *)
(* Modal axioms                                                        *)
(* ------------------------------------------------------------------ *)

let fs_valuation atom g =
  match atom with
  | "go" -> String.length (Gstate.local g 0) >= 3 && (Gstate.local g 0).[2] = '1'
  | "bob_got" -> Gstate.local g 1 <> "got0"
  | _ -> false

let test_axioms_fs () =
  let t = fs () in
  List.iter
    (fun base ->
      let reports = Axioms.all t ~valuation:fs_valuation ~agent:0 ~base in
      check_bool
        (Printf.sprintf "all axioms valid on FS for %s" (Formula.to_string base))
        true (Axioms.all_valid reports);
      check_int "17 schemas" 17 (List.length reports))
    [ Formula.Atom "go"; Formula.Atom "bob_got"; Parser.parse "go & F does[1](fire)" ]

let prop_axioms_random =
  QCheck.Test.make ~count:30 ~name:"axioms valid on random systems"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let t = Gen.tree seed in
      let valuation atom g =
        atom = "p" && Hashtbl.hash (Gstate.local g 0) mod 2 = 0
      in
      Axioms.all_valid (Axioms.all t ~valuation ~agent:0 ~base:(Formula.Atom "p"))
      && Axioms.all_valid (Axioms.all t ~valuation ~agent:1 ~base:(Formula.Atom "p")))

(* ------------------------------------------------------------------ *)
(* Formula simplification                                              *)
(* ------------------------------------------------------------------ *)

let test_simplify_cases () =
  let s text = Formula.to_string (Simplify.simplify (Parser.parse text)) in
  Alcotest.(check string) "double negation" "x" (s "!!x");
  Alcotest.(check string) "and true" "x" (s "x & true");
  Alcotest.(check string) "or true" "true" (s "x | true");
  Alcotest.(check string) "implies false antecedent" "true" (s "false -> x");
  Alcotest.(check string) "implies false consequent" "!x" (s "x -> false");
  Alcotest.(check string) "idempotent and" "x" (s "x & x");
  Alcotest.(check string) "iff self" "true" (s "x <-> x");
  Alcotest.(check string) "K true" "true" (s "K[0] true");
  Alcotest.(check string) "K false" "false" (s "K[0] false");
  Alcotest.(check string) "B geq 0" "true" (s "B[0]>=0 x");
  Alcotest.(check string) "B of true" "true" (s "B[0]>=3/4 true");
  Alcotest.(check string) "B of false" "false" (s "B[0]>=3/4 false");
  Alcotest.(check string) "B leq of false" "true" (s "B[0]<=1/4 false");
  Alcotest.(check string) "F false" "false" (s "F false");
  Alcotest.(check string) "FF collapse" "F x" (s "F F x");
  Alcotest.(check string) "X false" "false" (s "X false");
  Alcotest.(check string) "X true survives" "X true" (s "X true");
  Alcotest.(check string) "singleton E" "K[1] x" (s "E[1] x");
  Alcotest.(check string) "nested" "true" (s "K[0] (x -> x) & (F false -> y)")

let random_formula_gen =
  (* reuse a compact generator: random nesting of a few shapes *)
  let open QCheck.Gen in
  let base = oneofl [ Formula.Atom "even0"; Formula.Atom "even1"; Formula.True; Formula.False ] in
  let max_depth = 6 in
  let gens = Array.make (max_depth + 1) base in
  for n = 1 to max_depth do
    let sub = gens.(n - 1) in
    gens.(n) <-
      frequency
        [ (2, sub);
          (2, map2 (fun a b -> Formula.And (a, b)) sub sub);
          (2, map2 (fun a b -> Formula.Or (a, b)) sub sub);
          (1, map2 (fun a b -> Formula.Implies (a, b)) sub sub);
          (1, map (fun f -> Formula.Not f) sub);
          (1, map (fun f -> Formula.Knows (0, f)) sub);
          (1, map (fun f -> Formula.Believes (1, Formula.Geq, Q.of_ints 2 3, f)) sub);
          (1, map (fun f -> Formula.Eventually f) sub);
          (1, map (fun f -> Formula.Next f) sub);
          (1, map (fun f -> Formula.Historically f) sub)
        ]
  done;
  QCheck.make ~print:Formula.to_string gens.(max_depth)

let gen_valuation atom g =
  match atom with
  | "even0" -> Hashtbl.hash (Gstate.local g 0) mod 2 = 0
  | "even1" -> Hashtbl.hash (Gstate.local g 1) mod 2 = 0
  | _ -> false

let prop_simplify_preserves_semantics =
  QCheck.Test.make ~count:200 ~name:"simplify preserves semantics"
    QCheck.(pair (int_range 0 10_000) random_formula_gen)
    (fun (seed, f) ->
      let t = Gen.tree seed in
      let a = Semantics.eval t ~valuation:gen_valuation f in
      let b = Semantics.eval t ~valuation:gen_valuation (Simplify.simplify f) in
      Tree.fold_points t ~init:true ~f:(fun acc ~run ~time ->
          acc && Fact.holds a ~run ~time = Fact.holds b ~run ~time))

let prop_simplify_shrinks =
  QCheck.Test.make ~count:300 ~name:"simplify never grows and is idempotent"
    random_formula_gen (fun f ->
      let s = Simplify.simplify f in
      Formula.size s <= Formula.size f && Formula.equal s (Simplify.simplify s))

(* ------------------------------------------------------------------ *)
(* ALOHA                                                               *)
(* ------------------------------------------------------------------ *)

let test_aloha_two_agents () =
  let a = Aloha.analyze ~n:2 ~slots:3 () in
  (* Slot 0: the other agent transmits with probability 1/2; as it
     drains, collision-freedom improves. *)
  Alcotest.(check (list (pair int string)))
    "µ_free by slot"
    [ (0, "1/2"); (1, "2/3"); (2, "3/4") ]
    (List.map (fun (s, v) -> (s, Q.to_string v)) a.Aloha.mu_free_by_slot);
  check_bool "independent (own coin vs others)" true a.Aloha.independent;
  check_q "throughput" (q 11 16) a.Aloha.throughput

let test_aloha_ptx_tradeoff () =
  (* Lower transmission probability raises per-transmission success. *)
  let mu p = List.assoc 0 (Aloha.analyze ~p_tx:p ~n:2 ~slots:1 ()).Aloha.mu_free_by_slot in
  check_q "p=1/2" Q.half (mu Q.half);
  check_q "p=1/4" (q 3 4) (mu (q 1 4));
  check_bool "monotone" true (Q.gt (mu (q 1 10)) (mu (q 1 2)));
  Alcotest.check_raises "needs 2 agents"
    (Invalid_argument "Aloha.tree: need at least two agents") (fun () ->
      ignore (Aloha.tree ~n:1 ~slots:1 ()))

let test_aloha_three_agents () =
  let a = Aloha.analyze ~n:3 ~slots:2 () in
  (* Slot 0 with two rivals at p = 1/2: free iff both idle = 1/4. *)
  check_q "slot 0 with two rivals" (q 1 4) (List.assoc 0 a.Aloha.mu_free_by_slot);
  check_bool "µ improves over slots" true
    (Q.lt (List.assoc 0 a.Aloha.mu_free_by_slot) (List.assoc 1 a.Aloha.mu_free_by_slot));
  (* Theorem 6.2 holds per slot. *)
  let t = Aloha.tree ~n:3 ~slots:2 () in
  List.iter
    (fun slot ->
      let r =
        Theorems.expectation_identity (Aloha.phi_free t ~agent:0 ~slot) ~agent:0
          ~act:(Aloha.tx ~slot)
      in
      check_bool (Printf.sprintf "Thm 6.2 slot %d" slot) true
        (r.Theorems.independent && r.Theorems.identity))
    [ 0; 1 ]

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_jeffrey_random;
      prop_aumann_random;
      prop_appendix_random;
      prop_reference_beta;
      prop_reference_engine;
      prop_p_agreement_random;
      prop_policy_improves;
      prop_policy_bounded_by_best;
      prop_kripke_s5_random;
      prop_simulate_random_trees;
      prop_tree_io_random;
      prop_axioms_random;
      prop_simplify_preserves_semantics;
      prop_simplify_shrinks
    ]

let () =
  Alcotest.run "pak_extensions"
    [ ( "jeffrey",
        [ Alcotest.test_case "partitions" `Quick test_jeffrey_partitions;
          Alcotest.test_case "total probability" `Quick test_jeffrey_total_probability
        ] );
      ( "policy",
        [ Alcotest.test_case "reproduces section 8" `Quick test_policy_reproduces_section8;
          Alcotest.test_case "frontier" `Quick test_policy_frontier;
          Alcotest.test_case "drop all" `Quick test_policy_drop_all
        ] );
      ( "appendix",
        [ Alcotest.test_case "lemma A.1" `Quick test_appendix_lemma_a1;
          Alcotest.test_case "lemma B.1" `Quick test_appendix_lemma_b1;
          Alcotest.test_case "theorem 6.2 chain" `Quick test_appendix_thm62_chain;
          Alcotest.test_case "bridge breaks on figure 1" `Quick test_appendix_thm62_bridge_breaks
        ] );
      ( "reference engine",
        [ Alcotest.test_case "firing squad" `Quick test_reference_fs ] );
      ( "p-agreement",
        [ Alcotest.test_case "full information" `Quick test_p_agreement_full_information;
          Alcotest.test_case "guard" `Quick test_p_agreement_guard
        ] );
      ( "belief distribution",
        [ Alcotest.test_case "at action" `Quick test_belief_distribution ] );
      ( "aumann",
        [ Alcotest.test_case "trivial fact" `Quick test_aumann_trivial_fact;
          Alcotest.test_case "premise fails" `Quick test_aumann_premise_fails;
          Alcotest.test_case "full information" `Quick test_aumann_full_information
        ] );
      ( "kripke",
        [ Alcotest.test_case "structure" `Quick test_kripke_structure;
          Alcotest.test_case "agrees with layers" `Quick test_kripke_agrees_with_layers
        ] );
      ( "simulate",
        [ Alcotest.test_case "deterministic" `Quick test_simulate_deterministic;
          Alcotest.test_case "converges" `Quick test_simulate_converges;
          Alcotest.test_case "conditional" `Quick test_simulate_conditional
        ] );
      ( "tree_io",
        [ Alcotest.test_case "round trip" `Quick test_tree_io_roundtrip;
          Alcotest.test_case "errors" `Quick test_tree_io_errors
        ] );
      ( "axioms", [ Alcotest.test_case "fs" `Quick test_axioms_fs ] );
      ( "simplify", [ Alcotest.test_case "cases" `Quick test_simplify_cases ] );
      ( "aloha",
        [ Alcotest.test_case "two agents" `Quick test_aloha_two_agents;
          Alcotest.test_case "p_tx tradeoff" `Quick test_aloha_ptx_tradeoff;
          Alcotest.test_case "three agents" `Quick test_aloha_three_agents
        ] );
      ("properties", qcheck_cases)
    ]
