(* Tests for the paper's example systems: every number in Example 1,
   Figures 1 and 2, the Section 8 improvement, and the theorem checkers
   applied to each system family. *)

open Pak_rational
open Pak_pps
open Pak_systems

let q = Q.of_ints
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_q msg expected actual =
  Alcotest.(check string) msg (Q.to_string expected) (Q.to_string actual)
let check_qo msg expected actual =
  match actual with
  | Some v -> check_q msg expected v
  | None -> Alcotest.failf "%s: expected %s, got None" msg (Q.to_string expected)

(* ------------------------------------------------------------------ *)
(* Example 1: the firing squad                                         *)
(* ------------------------------------------------------------------ *)

let test_fs_paper_numbers () =
  let a = Firing_squad.analyze Firing_squad.Original in
  check_q "µ(ϕ_both@fire_A | fire_A) = 0.99" (q 99 100) a.Firing_squad.mu_both_given_fire_a;
  check_bool "spec (≥ 0.95) satisfied" true a.Firing_squad.spec_satisfied;
  check_qo "belief on 'Yes' = 1" Q.one a.Firing_squad.belief_heard_yes;
  check_qo "belief on nothing = 0.99" (q 99 100) a.Firing_squad.belief_heard_nothing;
  check_qo "belief on 'No' = 0" Q.zero a.Firing_squad.belief_heard_no;
  check_q "threshold met in measure 0.991" (q 991 1000) a.Firing_squad.threshold_met_measure;
  check_q "expected belief = µ (Thm 6.2)" (q 99 100) a.Firing_squad.expected_belief;
  check_bool "ϕ_both independent of fire_A" true a.Firing_squad.independent

let test_fs_improved () =
  (* Section 8: refraining from firing on 'No' yields 0.99899... *)
  let a = Firing_squad.analyze Firing_squad.Improved in
  check_q "µ = 990/991" (q 990 991) a.Firing_squad.mu_both_given_fire_a;
  check_bool "improved beats original" true
    (Q.gt a.Firing_squad.mu_both_given_fire_a (q 99 100));
  (* Alice never fires at the 'No' state in the improved protocol. *)
  check_bool "no belief at 'No'" true (a.Firing_squad.belief_heard_no = None);
  check_q "expected belief tracks µ" (q 990 991) a.Firing_squad.expected_belief

let test_fs_structure () =
  let t = Firing_squad.tree Firing_squad.Original in
  check_int "two agents" 2 (Tree.n_agents t);
  check_q "total measure" Q.one (Tree.measure t (Tree.all_runs t));
  check_bool "fire_A proper" true (Action.is_proper t ~agent:Firing_squad.alice ~act:Firing_squad.fire);
  check_bool "fire_B proper" true (Action.is_proper t ~agent:Firing_squad.bob ~act:Firing_squad.fire);
  check_bool "fire_A deterministic" true
    (Action.is_deterministic t ~agent:Firing_squad.alice ~act:Firing_squad.fire);
  check_int "protocol consistent" 0 (List.length (Tree.check_protocol_consistency t));
  (* Never fires when go = 0: µ(fire_A) = p_go. *)
  check_q "µ(R_fireA) = 1/2" Q.half
    (Tree.measure t (Action.runs_performing t ~agent:Firing_squad.alice ~act:Firing_squad.fire))

let test_fs_parametric () =
  (* Spec threshold 0.95 requires 1 - loss² ≥ 0.95: holds at 1/10 and
     1/20, fails at 1/4. *)
  let sat loss =
    (Firing_squad.analyze ~loss Firing_squad.Original).Firing_squad.spec_satisfied
  in
  check_bool "loss 1/10 ok" true (sat (q 1 10));
  check_bool "loss 1/20 ok" true (sat (q 1 20));
  check_bool "loss 1/4 violates" false (sat (q 1 4));
  (* p_go only scales R_fireA, not the conditional probability. *)
  let a = Firing_squad.analyze ~p_go:(q 1 5) Firing_squad.Original in
  check_q "µ unchanged by p_go" (q 99 100) a.Firing_squad.mu_both_given_fire_a;
  Alcotest.check_raises "p_go = 0 rejected"
    (Invalid_argument "Firing_squad.tree: p_go = 0 makes fire_A improper (never performed)")
    (fun () -> ignore (Firing_squad.tree ~p_go:Q.zero Firing_squad.Original))

let test_fs_theorems () =
  let t = Firing_squad.tree Firing_squad.Original in
  let both = Firing_squad.phi_both t in
  let r = Theorems.expectation_identity both ~agent:Firing_squad.alice ~act:Firing_squad.fire in
  check_bool "Thm 6.2 identity" true (r.Theorems.independent && r.Theorems.identity);
  (* Corollary 7.2 with ε = 1/10: µ = 0.99 ≥ 1 − ε², so
     µ(β ≥ 9/10 | fire_A) must be ≥ 9/10; it is 0.991. *)
  let pak = Theorems.pak_corollary both ~agent:Firing_squad.alice ~act:Firing_squad.fire ~eps:(q 1 10) in
  check_bool "PAK premise" true pak.Theorems.premise;
  check_bool "PAK conclusion" true pak.Theorems.conclusion;
  check_q "strong-belief measure" (q 991 1000) pak.Theorems.strong_belief_measure;
  (* Lemma 5.1: some firing point believes ≥ 0.99. *)
  let nec = Theorems.necessity_exists both ~agent:Firing_squad.alice ~act:Firing_squad.fire ~p:(q 99 100) in
  check_bool "witness exists" true (nec.Theorems.witness <> None)

(* ------------------------------------------------------------------ *)
(* Figure 1                                                            *)
(* ------------------------------------------------------------------ *)

let test_figure_one () =
  let a = Figure_one.analyze () in
  check_q "β_i(ψ)@α = 1/2" Q.half a.Figure_one.belief_psi_at_alpha;
  check_q "µ(ψ@α|α) = 0" Q.zero a.Figure_one.mu_psi;
  check_bool "ψ not independent" false a.Figure_one.psi_independent;
  check_q "µ(ϕ@α|α) = 1" Q.one a.Figure_one.mu_phi;
  check_q "E[β_i(ϕ)@α|α] = 1/2" Q.half a.Figure_one.expected_belief_phi;
  check_bool "ϕ not independent" false a.Figure_one.phi_independent;
  check_bool "Thm 6.2 vacuously respected" true a.Figure_one.theorem62_vacuous

let test_figure_one_parametric () =
  let a = Figure_one.analyze ~p_alpha:(q 1 5) () in
  check_q "belief ψ = 1 − p" (q 4 5) a.Figure_one.belief_psi_at_alpha;
  check_q "E[β(ϕ)] = p" (q 1 5) a.Figure_one.expected_belief_phi;
  Alcotest.check_raises "degenerate p rejected"
    (Invalid_argument "Figure_one.tree: p_alpha must lie strictly between 0 and 1")
    (fun () -> ignore (Figure_one.tree ~p_alpha:Q.one ()))

(* ------------------------------------------------------------------ *)
(* Figure 2 / Theorem 5.2                                              *)
(* ------------------------------------------------------------------ *)

let test_threshold_gap_exact () =
  let a = Threshold_gap.analyze ~p:(q 3 4) ~eps:(q 1 4) in
  check_q "µ = p" (q 3 4) a.Threshold_gap.mu;
  check_q "pooled = (p−ε)/(1−ε)" (q 2 3) a.Threshold_gap.pooled_belief;
  check_q "revealing = 1" Q.one a.Threshold_gap.revealing_belief;
  check_q "µ(β ≥ p | α) = ε" (q 1 4) a.Threshold_gap.threshold_met_measure;
  check_q "expected = p (Thm 6.2)" (q 3 4) a.Threshold_gap.expected_belief;
  check_bool "independent" true a.Threshold_gap.independent

let test_threshold_gap_grid () =
  (* Theorem 5.2: for every ε > 0 and p, the met-measure is exactly ε
     — arbitrarily small. *)
  List.iter
    (fun (pn, pd, en, ed) ->
      let p = q pn pd and eps = q en ed in
      let a = Threshold_gap.analyze ~p ~eps in
      check_q
        (Printf.sprintf "µ = p at p=%d/%d ε=%d/%d" pn pd en ed)
        p a.Threshold_gap.mu;
      check_q
        (Printf.sprintf "met measure = ε at p=%d/%d ε=%d/%d" pn pd en ed)
        eps a.Threshold_gap.threshold_met_measure;
      check_q "pooled belief closed form"
        (Q.div (Q.sub p eps) (Q.one_minus eps))
        a.Threshold_gap.pooled_belief;
      check_bool "pooled < p (threshold missed)" true
        (Q.lt a.Threshold_gap.pooled_belief p))
    [ (1, 2, 1, 100); (9, 10, 1, 10); (19, 20, 1, 1000); (2, 3, 1, 3) ];
  Alcotest.check_raises "needs ε < p"
    (Invalid_argument "Threshold_gap.tree: need 0 < eps < p < 1") (fun () ->
      ignore (Threshold_gap.tree ~p:(q 1 4) ~eps:(q 1 2)))

(* ------------------------------------------------------------------ *)
(* Coordinated attack                                                  *)
(* ------------------------------------------------------------------ *)

let test_coordinated_attack () =
  List.iter
    (fun rounds ->
      let a = Coordinated_attack.analyze ~rounds () in
      (* µ(both | attack_A) = 1 − loss^rounds *)
      check_q
        (Printf.sprintf "µ at k=%d" rounds)
        (Q.one_minus (Q.pow (q 1 10) rounds))
        a.Coordinated_attack.mu_both_given_attack_a;
      check_q "Thm 6.2 identity" a.Coordinated_attack.mu_both_given_attack_a
        a.Coordinated_attack.expected_belief;
      check_bool "independent" true a.Coordinated_attack.independent;
      (* With a single round no acknowledgement can arrive (B only acks
         after first hearing), so the ack states exist only for k ≥ 2. *)
      check_bool "ack certainty" true
        (a.Coordinated_attack.belief_with_ack = if rounds = 1 then None else Some Q.one);
      check_bool "no-ack belief < 1" true (Q.lt a.Coordinated_attack.belief_no_ack Q.one))
    [ 1; 2; 3 ]

let test_coordinated_attack_pak () =
  (* k=2, loss=1/10: µ = 0.99 = 1 − (1/10)², so Corollary 7.2 with
     ε = 1/10 applies. *)
  let t = Coordinated_attack.tree ~rounds:2 () in
  let both = Coordinated_attack.phi_both t in
  let r =
    Theorems.pak_corollary both ~agent:Coordinated_attack.general_a
      ~act:Coordinated_attack.attack ~eps:(q 1 10)
  in
  check_bool "premise (µ ≥ 1 − ε²)" true r.Theorems.premise;
  check_bool "conclusion (µ(β≥0.9|α) ≥ 0.9)" true r.Theorems.conclusion

(* ------------------------------------------------------------------ *)
(* Mutual exclusion                                                    *)
(* ------------------------------------------------------------------ *)

let test_mutex () =
  let a = Mutex.analyze () in
  (* Closed form: P(other not granted | I'm granted) with p = 1/2,
     err = 1/100: grant₀ = (1−p) + p·(err + (1−err)/2); alone excludes
     the both-granted error branch. *)
  let p = Q.half and err = q 1 100 in
  let grant0 =
    Q.add (Q.one_minus p) (Q.mul p (Q.add err (Q.div (Q.one_minus err) (Q.of_int 2))))
  in
  let alone = Q.add (Q.one_minus p) (Q.mul p (Q.div (Q.one_minus err) (Q.of_int 2))) in
  check_q "µ closed form" (Q.div alone grant0) a.Mutex.mu_alone_given_enter;
  check_q "belief = µ (single entering state)" a.Mutex.mu_alone_given_enter a.Mutex.belief_granted;
  check_q "expected = µ" a.Mutex.mu_alone_given_enter a.Mutex.expected_belief;
  check_bool "enter deterministic" true a.Mutex.enter_deterministic;
  check_bool "independent (Lemma 4.3a)" true a.Mutex.independent

let test_mutex_parametric () =
  (* err = 0: perfect arbiter, exclusion certain; the KoP limit holds. *)
  let t = Mutex.tree ~err:Q.zero () in
  let phi = Mutex.phi_alone t ~agent:0 in
  let r = Theorems.kop phi ~agent:0 ~act:Mutex.enter in
  check_q "µ = 1" Q.one r.Theorems.mu;
  check_bool "KoP: certain belief a.s." true r.Theorems.conclusion;
  (* err = 1: both always granted on contention. *)
  let a = Mutex.analyze ~err:Q.one () in
  check_bool "exclusion degraded" true (Q.lt a.Mutex.mu_alone_given_enter Q.one)

(* ------------------------------------------------------------------ *)
(* Judge                                                               *)
(* ------------------------------------------------------------------ *)

let test_judge () =
  let a = Judge.analyze ~rounds:3 ~convict_at:2 () in
  check_q "µ(guilty | convict)" (q 243 250) a.Judge.mu_guilty_given_convict;
  check_q "Thm 6.2" a.Judge.mu_guilty_given_convict a.Judge.expected_belief;
  check_bool "independent" true a.Judge.independent;
  (* Posteriors: inc=2 gives 0.9, inc=3 gives 729/730. *)
  Alcotest.(check (list (pair int string)))
    "posteriors"
    [ (2, "9/10"); (3, "729/730") ]
    (List.map (fun (c, b) -> (c, Q.to_string b)) a.Judge.posterior_by_count)

let test_judge_threshold_tradeoff () =
  (* Raising the conviction bar raises the conditional guilt
     probability (and lowers conviction frequency). *)
  let mu m = (Judge.analyze ~rounds:3 ~convict_at:m ()).Judge.mu_guilty_given_convict in
  check_bool "monotone in convict_at" true (Q.lt (mu 1) (mu 2) && Q.lt (mu 2) (mu 3));
  Alcotest.check_raises "convict_at range"
    (Invalid_argument "Judge.tree: convict_at must lie in 0..rounds") (fun () ->
      ignore (Judge.tree ~rounds:2 ~convict_at:5 ()))

let test_judge_pak () =
  (* A judge convicting on unanimous evidence: µ = 729/730 ≥ 1 − ε²
     for ε = 1/27+: use ε = 1/25. *)
  let t = Judge.tree ~rounds:3 ~convict_at:3 () in
  let guilty = Judge.guilty_fact t in
  let r = Theorems.pak_corollary guilty ~agent:Judge.judge ~act:Judge.convict ~eps:(q 1 25) in
  check_bool "premise" true r.Theorems.premise;
  check_bool "PAK conclusion" true r.Theorems.conclusion

(* ------------------------------------------------------------------ *)
(* Monderer–Samet flat systems                                         *)
(* ------------------------------------------------------------------ *)

let test_monderer_samet_flat () =
  (* Two agents; agent 0's label pools two worlds. *)
  let t =
    Monderer_samet.flat
      [ ([ "x"; "u" ], Q.half); ([ "x"; "v" ], q 1 4); ([ "y"; "v" ], q 1 4) ]
  in
  check_int "three one-point runs" 3 (Tree.n_runs t);
  check_int "flat runs have length 1" 1 (Tree.run_length t 0);
  let phi = Fact.of_state_pred t (fun g -> Gstate.local g 1 = "v") in
  let r = Monderer_samet.check phi ~agent:0 in
  check_q "prior" Q.half r.Monderer_samet.prior;
  check_bool "expected posterior = prior" true r.Monderer_samet.identity;
  (* Agent 0 at "x": posterior of v = (1/4)/(3/4) = 1/3; at "y": 1. *)
  check_q "posterior at x" (q 1 3) (Belief.degree phi ~agent:0 ~run:0 ~time:0);
  check_q "posterior at y" Q.one (Belief.degree phi ~agent:0 ~run:2 ~time:0)

let prop_monderer_samet_random =
  QCheck.Test.make ~count:200 ~name:"MS identity on random flat systems"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let t = Monderer_samet.random_flat ~n_agents:2 ~n_states:6 ~label_alphabet:3 ~seed in
      let phi = Pak_pps.Gen.past_based_fact t ~seed in
      let r0 = Monderer_samet.check phi ~agent:0 in
      let r1 = Monderer_samet.check phi ~agent:1 in
      r0.Monderer_samet.identity && r1.Monderer_samet.identity)

(* The MS identity also holds on arbitrary deep systems at time 0 — it
   is the action-free shadow of Theorem 6.2. *)
let prop_monderer_samet_deep =
  QCheck.Test.make ~count:100 ~name:"MS identity on deep systems"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let t = Pak_pps.Gen.tree seed in
      let phi = Pak_pps.Gen.past_based_fact t ~seed in
      (Monderer_samet.check phi ~agent:0).Monderer_samet.identity)

(* ------------------------------------------------------------------ *)
(* Consensus                                                           *)
(* ------------------------------------------------------------------ *)

let test_consensus () =
  let a = Consensus.analyze ~rounds:2 () in
  (* Agreement fails only when the bits differ and every message is
     lost: µ(agree | decide_v) = 1 − p_other·loss². With p = 1/2:
     1 − (1/2)(1/100) = 199/200 for either decided value. *)
  List.iter
    (fun (v, mu) -> check_q (Printf.sprintf "µ agree | decide%d" v) (q 199 200) mu)
    a.Consensus.mu_agree_given_decide;
  List.iter
    (fun (v, e) ->
      check_q
        (Printf.sprintf "Thm 6.2 for decide%d" v)
        (List.assoc v a.Consensus.mu_agree_given_decide)
        e)
    a.Consensus.expected_belief;
  check_bool "independent" true a.Consensus.independent

let test_consensus_rounds_help () =
  let mu rounds =
    List.assoc 1 (Consensus.analyze ~rounds ()).Consensus.mu_agree_given_decide
  in
  check_bool "more rounds, higher agreement" true (Q.lt (mu 1) (mu 2) && Q.lt (mu 2) (mu 3))

(* ------------------------------------------------------------------ *)
(* Interactive proof                                                    *)
(* ------------------------------------------------------------------ *)

let test_interactive_proof_soundness () =
  (* µ(true | accept) = p / (p + (1-p)·c^k); with p = c = 1/2:
     k=1 -> 2/3, k=2 -> 4/5, k=3 -> 8/9, k=10 -> 1024/1025. *)
  List.iter
    (fun (rounds, expected) ->
      let a = Interactive_proof.analyze ~rounds () in
      check_q
        (Printf.sprintf "soundness at k=%d" rounds)
        (Q.of_string expected)
        a.Interactive_proof.mu_true_given_accept;
      check_q "Thm 6.2" a.Interactive_proof.mu_true_given_accept
        a.Interactive_proof.expected_belief;
      (* Single accepting information state: belief = µ exactly. *)
      check_q "belief at accept" a.Interactive_proof.mu_true_given_accept
        a.Interactive_proof.belief_at_accept;
      check_bool "independent" true a.Interactive_proof.independent)
    [ (1, "2/3"); (2, "4/5"); (3, "8/9"); (10, "1024/1025") ];
  (* Acceptance measure: p + (1-p)·c^k. *)
  let a = Interactive_proof.analyze ~rounds:3 () in
  check_q "accept measure" (q 9 16) a.Interactive_proof.accept_measure

let test_interactive_proof_exponential_pak () =
  (* Section 7's remark: thresholds exponentially close to 1 force
     beliefs exponentially close to 1, with exponentially small failure
     probability. With cheat = 1/4 and even k, 1 - µ is a square and
     Corollary 7.2 applies at ε = sqrt(1-µ). *)
  let a = Interactive_proof.analyze ~cheat:(q 1 4) ~rounds:2 () in
  (* µ = (1/2)/(1/2 + 1/2·(1/16)) = 16/17; 1-µ = 1/17 — not a square. *)
  check_q "µ at cheat=1/4,k=2" (q 16 17) a.Interactive_proof.mu_true_given_accept;
  check_bool "eps not rational here" true (a.Interactive_proof.pak_eps = None);
  (* Engineer a perfect square: p_true = 8/9 with cheat 1/8, k = 1:
     µ = (8/9)/(8/9 + (1/9)(1/8)) = 64/65... use the checker directly
     with a chosen eps instead. *)
  let t = Interactive_proof.tree ~rounds:6 () in
  let phi = Interactive_proof.true_fact t in
  let r =
    Theorems.pak_corollary phi ~agent:Interactive_proof.verifier
      ~act:Interactive_proof.accept ~eps:(q 1 8)
  in
  (* µ = 64/65 ≥ 1 - 1/64 = 63/64 and µ(β ≥ 7/8 | accept) = 1. *)
  check_bool "PAK premise at ε=1/8" true r.Theorems.premise;
  check_q "strong belief surely" Q.one r.Theorems.strong_belief_measure;
  check_bool "PAK conclusion" true r.Theorems.conclusion

let test_interactive_proof_guards () =
  Alcotest.check_raises "degenerate"
    (Invalid_argument "Interactive_proof.tree: acceptance impossible (improper action)")
    (fun () -> ignore (Interactive_proof.tree ~p_true:Q.zero ~cheat:Q.zero ~rounds:1 ()));
  (* honest-only world: verifier always accepts, belief 1 *)
  let a = Interactive_proof.analyze ~p_true:Q.one ~rounds:2 () in
  check_q "always sound" Q.one a.Interactive_proof.mu_true_given_accept

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_monderer_samet_random; prop_monderer_samet_deep ]

let () =
  Alcotest.run "pak_systems"
    [ ( "firing squad",
        [ Alcotest.test_case "paper numbers" `Quick test_fs_paper_numbers;
          Alcotest.test_case "improved (section 8)" `Quick test_fs_improved;
          Alcotest.test_case "structure" `Quick test_fs_structure;
          Alcotest.test_case "parametric" `Quick test_fs_parametric;
          Alcotest.test_case "theorems" `Quick test_fs_theorems
        ] );
      ( "figure one",
        [ Alcotest.test_case "counterexamples" `Quick test_figure_one;
          Alcotest.test_case "parametric" `Quick test_figure_one_parametric
        ] );
      ( "threshold gap",
        [ Alcotest.test_case "exact quantities" `Quick test_threshold_gap_exact;
          Alcotest.test_case "grid" `Quick test_threshold_gap_grid
        ] );
      ( "coordinated attack",
        [ Alcotest.test_case "closed forms" `Quick test_coordinated_attack;
          Alcotest.test_case "PAK corollary" `Quick test_coordinated_attack_pak
        ] );
      ( "mutex",
        [ Alcotest.test_case "analysis" `Quick test_mutex;
          Alcotest.test_case "parametric / KoP" `Quick test_mutex_parametric
        ] );
      ( "judge",
        [ Alcotest.test_case "posteriors" `Quick test_judge;
          Alcotest.test_case "threshold tradeoff" `Quick test_judge_threshold_tradeoff;
          Alcotest.test_case "PAK" `Quick test_judge_pak
        ] );
      ( "monderer-samet",
        [ Alcotest.test_case "flat system" `Quick test_monderer_samet_flat ] );
      ( "consensus",
        [ Alcotest.test_case "agreement" `Quick test_consensus;
          Alcotest.test_case "rounds monotone" `Quick test_consensus_rounds_help
        ] );
      ( "interactive proof",
        [ Alcotest.test_case "soundness amplification" `Quick test_interactive_proof_soundness;
          Alcotest.test_case "exponential PAK" `Quick test_interactive_proof_exponential_pak;
          Alcotest.test_case "guards" `Quick test_interactive_proof_guards
        ] );
      ("properties", qcheck_cases)
    ]
