(* Tests for finite rational-weighted distributions. *)

open Pak_rational
open Pak_dist

let q = Q.of_ints
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_q msg expected actual =
  Alcotest.(check string) msg (Q.to_string expected) (Q.to_string actual)

let test_return () =
  let d = Dist.return 42 in
  check_int "size" 1 (Dist.size d);
  check_bool "deterministic" true (Dist.is_deterministic d);
  check_q "prob" Q.one (Dist.prob d 42);
  check_q "prob other" Q.zero (Dist.prob d 7)

let test_of_list () =
  let d = Dist.of_list [ ("a", q 1 2); ("b", q 1 3); ("c", q 1 6) ] in
  check_int "size" 3 (Dist.size d);
  check_q "mass" Q.one (Dist.total_mass d);
  check_q "prob b" (q 1 3) (Dist.prob d "b");
  Alcotest.check_raises "not normalized"
    (Invalid_argument "Dist.of_list: weights sum to 5/6, not 1") (fun () ->
      ignore (Dist.of_list [ ("a", q 1 2); ("b", q 1 3) ]));
  Alcotest.check_raises "negative" (Invalid_argument "Dist: negative weight") (fun () ->
      ignore (Dist.of_list [ ("a", q 3 2); ("b", q (-1) 2) ]))

let test_of_list_merges_duplicates () =
  let d = Dist.of_list [ ("a", q 1 2); ("a", q 1 4); ("b", q 1 4) ] in
  check_int "merged size" 2 (Dist.size d);
  check_q "merged prob" (q 3 4) (Dist.prob d "a")

let test_of_weights () =
  let d = Dist.of_weights [ (1, q 2 1); (2, q 6 1) ] in
  check_q "rescaled 1" (q 1 4) (Dist.prob d 1);
  check_q "rescaled 2" (q 3 4) (Dist.prob d 2);
  Alcotest.check_raises "all zero" (Invalid_argument "Dist: empty support") (fun () ->
      ignore (Dist.of_weights [ (1, Q.zero) ]))

let test_uniform_bernoulli_coin () =
  let d = Dist.uniform [ 'x'; 'y'; 'z'; 'w' ] in
  check_q "uniform" (q 1 4) (Dist.prob d 'y');
  let b = Dist.bernoulli (q 9 10) in
  check_q "bernoulli true" (q 9 10) (Dist.prob b true);
  check_q "bernoulli false" (q 1 10) (Dist.prob b false);
  check_bool "bernoulli 1 det" true (Dist.is_deterministic (Dist.bernoulli Q.one));
  check_bool "bernoulli 0 det" true (Dist.is_deterministic (Dist.bernoulli Q.zero));
  let c = Dist.coin (q 1 3) ~yes:"fire" ~no:"skip" in
  check_q "coin yes" (q 1 3) (Dist.prob c "fire");
  Alcotest.check_raises "bad p" (Invalid_argument "Dist.bernoulli: not a probability")
    (fun () -> ignore (Dist.bernoulli (q 3 2)))

let test_map_merges () =
  let d = Dist.of_list [ (1, q 1 2); (2, q 1 3); (3, q 1 6) ] in
  let parity = Dist.map (fun n -> n mod 2) d in
  check_int "two classes" 2 (Dist.size parity);
  check_q "odd mass" (q 2 3) (Dist.prob parity 1);
  check_q "even mass" (q 1 3) (Dist.prob parity 0)

let test_bind () =
  (* Flip a fair coin; if heads flip a 0.9-coin, else point mass false. *)
  let d =
    Dist.bind (Dist.bernoulli Q.half) (fun heads ->
        if heads then Dist.bernoulli (q 9 10) else Dist.return false)
  in
  check_q "P(true)" (q 9 20) (Dist.prob d true);
  check_q "P(false)" (q 11 20) (Dist.prob d false);
  check_q "mass" Q.one (Dist.total_mass d)

let test_product () =
  let d = Dist.product (Dist.bernoulli (q 9 10)) (Dist.bernoulli (q 9 10)) in
  check_q "both delivered" (q 81 100) (Dist.prob d (true, true));
  check_q "both lost" (q 1 100) (Dist.prob d (false, false));
  check_q "at least one" (q 99 100) (Dist.prob_pred d (fun (a, b) -> a || b))

let test_product_list () =
  let channels = List.init 3 (fun _ -> Dist.bernoulli (q 1 2)) in
  let d = Dist.product_list channels in
  check_int "2^3 outcomes" 8 (Dist.size d);
  check_q "one outcome" (q 1 8) (Dist.prob d [ true; false; true ]);
  let empty = Dist.product_list [] in
  check_q "empty product is Dirac []" Q.one (Dist.prob empty [])

let test_condition () =
  let d = Dist.of_list [ (0, q 1 2); (1, q 1 4); (2, q 1 4) ] in
  let c = Dist.condition d (fun n -> n > 0) in
  check_q "renormalized" (q 1 2) (Dist.prob c 1);
  check_q "mass" Q.one (Dist.total_mass c);
  Alcotest.check_raises "impossible event"
    (Invalid_argument "Dist.condition: zero-probability event") (fun () ->
      ignore (Dist.condition d (fun n -> n > 5)))

let test_expectation () =
  let d = Dist.of_list [ (0, q 1 2); (10, q 1 4); (20, q 1 4) ] in
  check_q "E[X]" (q 15 2) (Dist.expectation d (fun n -> Q.of_int n));
  (* The paper's Def 6.1 is exactly this with X = beta_i(phi)@alpha. *)
  check_q "E[1_A] = P(A)" (Dist.prob_pred d (fun n -> n >= 10))
    (Dist.expectation d (fun n -> if n >= 10 then Q.one else Q.zero))

let test_filter_map () =
  let d = Dist.of_list [ (1, q 1 2); (2, q 1 4); (3, q 1 4) ] in
  let f n = if n mod 2 = 1 then Some (n * 10) else None in
  let c = Dist.filter_map f d in
  check_q "renormalized odd 1" (q 2 3) (Dist.prob c 10);
  check_q "renormalized odd 3" (q 1 3) (Dist.prob c 30)

(* Properties *)

let gen_weights =
  QCheck.(list_of_size (Gen.int_range 1 8) (pair (int_range 0 5) (int_range 1 20)))

let dist_of_raw raw = Dist.of_weights (List.map (fun (v, w) -> (v, Q.of_int w)) raw)

let prop_mass_one =
  QCheck.Test.make ~count:300 ~name:"total mass is one" gen_weights (fun raw ->
      Q.equal Q.one (Dist.total_mass (dist_of_raw raw)))

let prop_expectation_linear =
  QCheck.Test.make ~count:300 ~name:"expectation is linear" gen_weights (fun raw ->
      let d = dist_of_raw raw in
      let f n = Q.of_int (n * 2) and g n = Q.of_int (n - 3) in
      Q.equal
        (Dist.expectation d (fun n -> Q.add (f n) (g n)))
        (Q.add (Dist.expectation d f) (Dist.expectation d g)))

let prop_bind_return_right_id =
  QCheck.Test.make ~count:300 ~name:"bind return = id" gen_weights (fun raw ->
      let d = dist_of_raw raw in
      let d' = Dist.bind d Dist.return in
      List.for_all (fun v -> Q.equal (Dist.prob d v) (Dist.prob d' v)) (Dist.support d))

let prop_condition_bayes =
  QCheck.Test.make ~count:300 ~name:"conditioning matches Bayes" gen_weights (fun raw ->
      let d = dist_of_raw raw in
      let pred n = n mod 2 = 0 in
      let pa = Dist.prob_pred d pred in
      QCheck.assume (not (Q.is_zero pa));
      let c = Dist.condition d pred in
      List.for_all
        (fun v ->
          if pred v then Q.equal (Dist.prob c v) (Q.div (Dist.prob d v) pa)
          else Q.is_zero (Dist.prob c v))
        (Dist.support d))

let prop_product_marginals =
  QCheck.Test.make ~count:200 ~name:"product has independent marginals"
    QCheck.(pair gen_weights gen_weights)
    (fun (ra, rb) ->
      let a = dist_of_raw ra and b = dist_of_raw rb in
      let p = Dist.product a b in
      List.for_all
        (fun va ->
          List.for_all
            (fun vb -> Q.equal (Dist.prob p (va, vb)) (Q.mul (Dist.prob a va) (Dist.prob b vb)))
            (Dist.support b))
        (Dist.support a))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_mass_one;
      prop_expectation_linear;
      prop_bind_return_right_id;
      prop_condition_bayes;
      prop_product_marginals
    ]

let () =
  Alcotest.run "pak_dist"
    [ ( "dist",
        [ Alcotest.test_case "return" `Quick test_return;
          Alcotest.test_case "of_list" `Quick test_of_list;
          Alcotest.test_case "duplicate merging" `Quick test_of_list_merges_duplicates;
          Alcotest.test_case "of_weights" `Quick test_of_weights;
          Alcotest.test_case "uniform/bernoulli/coin" `Quick test_uniform_bernoulli_coin;
          Alcotest.test_case "map merges" `Quick test_map_merges;
          Alcotest.test_case "bind" `Quick test_bind;
          Alcotest.test_case "product" `Quick test_product;
          Alcotest.test_case "product_list" `Quick test_product_list;
          Alcotest.test_case "condition" `Quick test_condition;
          Alcotest.test_case "expectation" `Quick test_expectation;
          Alcotest.test_case "filter_map" `Quick test_filter_map
        ] );
      ("properties", qcheck_cases)
    ]
