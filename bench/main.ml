(* Benchmark harness.

   Part 1 — reproduction: regenerates every numeric claim of the paper
   (the experiment ids EXP-* of DESIGN.md), printing paper-expected vs
   measured values; every value is an exact rational so "OK" means
   equality, not tolerance. The process exits non-zero if any
   reproduction row fails.

   Part 2 — timing: one bechamel Test per core algorithm (arithmetic,
   compilation, belief computation, theorem checking, model checking,
   fixpoints), with OLS estimates printed as ns/run. Skip with
   --no-timing.

   Run with: dune exec bench/main.exe *)

open Pak
module FS = Systems.Firing_squad
module F1 = Systems.Figure_one
module TG = Systems.Threshold_gap
module CA = Systems.Coordinated_attack
module MX = Systems.Mutex
module JD = Systems.Judge
module MS = Systems.Monderer_samet
module CS = Systems.Consensus
module IP = Systems.Interactive_proof

let failures = ref 0

let row_q ~exp_id ~label ~paper measured =
  let ok = Q.equal (Q.of_string paper) measured in
  if not ok then incr failures;
  Printf.printf "  %-8s %-46s paper=%-12s measured=%-12s %s\n" exp_id label paper
    (Q.to_string measured)
    (if ok then "OK" else "MISMATCH")

let row_bool ~exp_id ~label expected actual =
  let ok = expected = actual in
  if not ok then incr failures;
  Printf.printf "  %-8s %-46s expect=%-12b measured=%-12b %s\n" exp_id label expected actual
    (if ok then "OK" else "MISMATCH")

let section title = Printf.printf "\n== %s ==\n" title

(* ------------------------------------------------------------------ *)
(* EXP-E1: Example 1                                                   *)
(* ------------------------------------------------------------------ *)

let exp_e1 () =
  section "EXP-E1: Example 1 (relaxed firing squad, FS protocol)";
  let a = FS.analyze FS.Original in
  row_q ~exp_id:"EXP-E1" ~label:"µ(ϕ_both@fire_A | fire_A)" ~paper:"99/100"
    a.FS.mu_both_given_fire_a;
  row_bool ~exp_id:"EXP-E1" ~label:"Spec µ ≥ 0.95 satisfied" true a.FS.spec_satisfied;
  row_q ~exp_id:"EXP-E1" ~label:"β_A(fire_B) on 'Yes'" ~paper:"1"
    (Option.get a.FS.belief_heard_yes);
  row_q ~exp_id:"EXP-E1" ~label:"β_A(fire_B) on nothing" ~paper:"99/100"
    (Option.get a.FS.belief_heard_nothing);
  row_q ~exp_id:"EXP-E1" ~label:"β_A(fire_B) on 'No'" ~paper:"0"
    (Option.get a.FS.belief_heard_no);
  row_q ~exp_id:"EXP-E1" ~label:"violation measure 0.1·0.1·0.9" ~paper:"9/1000"
    (Q.one_minus a.FS.threshold_met_measure);
  row_q ~exp_id:"EXP-E1" ~label:"µ(threshold met | fire_A)" ~paper:"991/1000"
    a.FS.threshold_met_measure;
  row_q ~exp_id:"EXP-E1" ~label:"E(β@fire_A | fire_A) = µ (Thm 6.2)" ~paper:"99/100"
    a.FS.expected_belief

(* ------------------------------------------------------------------ *)
(* EXP-F1: Figure 1 counterexamples                                    *)
(* ------------------------------------------------------------------ *)

let exp_f1 () =
  section "EXP-F1: Figure 1 (mixed action counterexamples, Sections 4 and 6)";
  let a = F1.analyze () in
  row_q ~exp_id:"EXP-F1" ~label:"β_i(ψ)@α for ψ = ¬does(α)" ~paper:"1/2"
    a.F1.belief_psi_at_alpha;
  row_q ~exp_id:"EXP-F1" ~label:"µ(ψ@α | α)" ~paper:"0" a.F1.mu_psi;
  row_bool ~exp_id:"EXP-F1" ~label:"ψ local-state independent of α" false a.F1.psi_independent;
  row_q ~exp_id:"EXP-F1" ~label:"µ(ϕ@α | α) for ϕ = does(α)" ~paper:"1" a.F1.mu_phi;
  row_q ~exp_id:"EXP-F1" ~label:"E(β_i(ϕ)@α | α)" ~paper:"1/2" a.F1.expected_belief_phi;
  row_bool ~exp_id:"EXP-F1" ~label:"Theorem 6.2 only vacuously respected" true
    a.F1.theorem62_vacuous

(* ------------------------------------------------------------------ *)
(* EXP-F2: Figure 2 / Theorem 5.2                                      *)
(* ------------------------------------------------------------------ *)

let exp_f2 () =
  section "EXP-F2: Figure 2 / Theorem 5.2 (T-hat construction grid)";
  List.iter
    (fun (p, eps) ->
      let a = TG.analyze ~p:(Q.of_string p) ~eps:(Q.of_string eps) in
      let tag = Printf.sprintf "p=%s ε=%s" p eps in
      row_q ~exp_id:"EXP-F2" ~label:(tag ^ ": µ(ϕ@α|α) = p") ~paper:p a.TG.mu;
      row_q ~exp_id:"EXP-F2" ~label:(tag ^ ": µ(β ≥ p | α) = ε") ~paper:eps
        a.TG.threshold_met_measure;
      row_q ~exp_id:"EXP-F2"
        ~label:(tag ^ ": pooled belief = (p−ε)/(1−ε)")
        ~paper:(Q.to_string
                  (Q.div
                     (Q.sub (Q.of_string p) (Q.of_string eps))
                     (Q.one_minus (Q.of_string eps))))
        a.TG.pooled_belief)
    [ ("3/4", "1/4"); ("9/10", "1/10"); ("19/20", "1/100"); ("1/2", "1/1000") ]

(* ------------------------------------------------------------------ *)
(* Theorem checkers on random protocol-generated systems               *)
(* ------------------------------------------------------------------ *)

let random_sweep ~exp_id ~label ~count check =
  let ok = ref 0 and total = ref 0 in
  for seed = 1 to count do
    let tree = Gen.tree seed in
    match Gen.pick_proper_action tree ~seed with
    | None -> ()
    | Some (agent, act) ->
      incr total;
      if check tree seed agent act then incr ok
  done;
  let pass = !ok = !total && !total > 0 in
  if not pass then incr failures;
  Printf.printf "  %-8s %-46s %d/%d systems %s\n" exp_id label !ok !total
    (if pass then "OK" else "MISMATCH")

let exp_theorems_random () =
  section "EXP-T42/L43/L51/T62/T71/KOP: theorem checkers on random protocol systems";
  random_sweep ~exp_id:"EXP-L43" ~label:"Lemma 4.3(b): past-based => independent" ~count:400
    (fun tree seed agent act ->
      let _ = tree in
      let fact = Gen.past_based_fact tree ~seed in
      (Theorems.lemma43 fact ~agent ~act).Theorems.independent);
  random_sweep ~exp_id:"EXP-T62" ~label:"Theorem 6.2 exact identity (past-based)" ~count:400
    (fun tree seed agent act ->
      let fact = Gen.past_based_fact tree ~seed in
      let r = Theorems.expectation_identity fact ~agent ~act in
      r.Theorems.independent && r.Theorems.identity)
    ;
  random_sweep ~exp_id:"EXP-T62" ~label:"Theorem 6.2 respected (transient facts)" ~count:400
    (fun tree seed agent act ->
      let fact = Gen.transient_fact tree ~seed in
      (Theorems.expectation_identity fact ~agent ~act).Theorems.respected);
  random_sweep ~exp_id:"EXP-T42" ~label:"Theorem 4.2 at p = min belief" ~count:400
    (fun tree seed agent act ->
      let fact = Gen.past_based_fact tree ~seed in
      match Belief.min_at_action fact ~agent ~act with
      | None -> false
      | Some p -> (Theorems.sufficiency fact ~agent ~act ~p).Theorems.respected);
  random_sweep ~exp_id:"EXP-L51" ~label:"Lemma 5.1 witness at p = µ" ~count:400
    (fun tree seed agent act ->
      let fact = Gen.past_based_fact tree ~seed in
      let p = Constr.mu_given_action fact ~agent ~act in
      (Theorems.necessity_exists fact ~agent ~act ~p).Theorems.respected);
  random_sweep ~exp_id:"EXP-T71" ~label:"Theorem 7.1 grid (5 (ε,δ) pairs)" ~count:200
    (fun tree seed agent act ->
      let fact = Gen.past_based_fact tree ~seed in
      List.for_all
        (fun (e, d) ->
          (Theorems.pak fact ~agent ~act ~eps:(Q.of_ints 1 e) ~delta:(Q.of_ints 1 d))
            .Theorems.respected)
        [ (2, 2); (2, 5); (5, 2); (10, 10); (3, 7) ]);
  random_sweep ~exp_id:"EXP-KOP" ~label:"Lemma F.1 (KoP limit)" ~count:400
    (fun tree seed agent act ->
      let fact = Gen.past_based_fact tree ~seed in
      (Theorems.kop fact ~agent ~act).Theorems.respected)

(* ------------------------------------------------------------------ *)
(* PAK on the example systems                                          *)
(* ------------------------------------------------------------------ *)

let exp_t71_systems () =
  section "EXP-T71: PAK corollary on the example systems";
  let t = FS.tree FS.Original in
  let r =
    Theorems.pak_corollary (FS.phi_both t) ~agent:FS.alice ~act:FS.fire ~eps:(Q.of_ints 1 10)
  in
  row_bool ~exp_id:"EXP-T71" ~label:"FS: µ=0.99 >= 1-eps² => µ(β>=0.9|α) >= 0.9" true
    (r.Theorems.premise && r.Theorems.conclusion);
  row_q ~exp_id:"EXP-T71" ~label:"FS: µ(β >= 0.9 | fire_A)" ~paper:"991/1000"
    r.Theorems.strong_belief_measure;
  let t = CA.tree ~rounds:2 () in
  let r =
    Theorems.pak_corollary (CA.phi_both t) ~agent:CA.general_a ~act:CA.attack
      ~eps:(Q.of_ints 1 10)
  in
  row_bool ~exp_id:"EXP-T71" ~label:"CA k=2: PAK premise and conclusion" true
    (r.Theorems.premise && r.Theorems.conclusion);
  let t = JD.tree ~rounds:3 ~convict_at:3 () in
  let r =
    Theorems.pak_corollary (JD.guilty_fact t) ~agent:JD.judge ~act:JD.convict
      ~eps:(Q.of_ints 1 25)
  in
  row_bool ~exp_id:"EXP-T71" ~label:"Judge m=3: PAK premise and conclusion" true
    (r.Theorems.premise && r.Theorems.conclusion)

(* ------------------------------------------------------------------ *)
(* KoP on a reliable system                                            *)
(* ------------------------------------------------------------------ *)

let exp_kop_reliable () =
  section "EXP-KOP: Lemma F.1 on reliable systems (threshold 1)";
  let t = MX.tree ~err:Q.zero () in
  let r = Theorems.kop (MX.phi_alone t ~agent:0) ~agent:0 ~act:MX.enter in
  row_q ~exp_id:"EXP-KOP" ~label:"mutex err=0: µ(alone@enter|enter)" ~paper:"1" r.Theorems.mu;
  row_q ~exp_id:"EXP-KOP" ~label:"mutex err=0: µ(β = 1 | enter)" ~paper:"1"
    r.Theorems.certain_measure

(* ------------------------------------------------------------------ *)
(* EXP-S8: the Section 8 improvement                                   *)
(* ------------------------------------------------------------------ *)

let exp_s8 () =
  section "EXP-S8: Section 8 (Alice skips on 'No')";
  let a = FS.analyze FS.Improved in
  row_q ~exp_id:"EXP-S8" ~label:"µ(ϕ_both@fire_A | fire_A) improved" ~paper:"990/991"
    a.FS.mu_both_given_fire_a;
  row_bool ~exp_id:"EXP-S8" ~label:"strictly better than 0.99" true
    (Q.gt a.FS.mu_both_given_fire_a (Q.of_ints 99 100))

(* ------------------------------------------------------------------ *)
(* EXP-MS: Monderer–Samet (Section 6.1)                                *)
(* ------------------------------------------------------------------ *)

let exp_ms () =
  section "EXP-MS: Monderer–Samet flat-system identity (Section 6.1)";
  let ok = ref 0 in
  let count = 500 in
  for seed = 1 to count do
    let t = MS.random_flat ~n_agents:2 ~n_states:6 ~label_alphabet:3 ~seed in
    let fact = Gen.past_based_fact t ~seed in
    if (MS.check fact ~agent:0).MS.identity then incr ok
  done;
  let pass = !ok = count in
  if not pass then incr failures;
  Printf.printf "  %-8s %-46s %d/%d systems %s\n" "EXP-MS"
    "E[posterior] = prior on random flat systems" !ok count
    (if pass then "OK" else "MISMATCH")

(* ------------------------------------------------------------------ *)
(* Closed forms on the remaining systems                               *)
(* ------------------------------------------------------------------ *)

let exp_aux_systems () =
  section "AUX: closed forms on the motivating systems";
  let a = CA.analyze ~rounds:3 () in
  row_q ~exp_id:"AUX-CA" ~label:"attack k=3: µ(both|A) = 1 - 0.1³" ~paper:"999/1000"
    a.CA.mu_both_given_attack_a;
  let m = MX.analyze () in
  row_q ~exp_id:"AUX-MX" ~label:"mutex: µ(alone@enter|enter)" ~paper:"299/301"
    m.MX.mu_alone_given_enter;
  let j = JD.analyze ~rounds:3 ~convict_at:2 () in
  row_q ~exp_id:"AUX-JD" ~label:"judge n=3,m=2: µ(guilty|convict)" ~paper:"243/250"
    j.JD.mu_guilty_given_convict;
  let c = CS.analyze ~rounds:2 () in
  row_q ~exp_id:"AUX-CS" ~label:"consensus k=2: µ(agree|decide₁)" ~paper:"199/200"
    (List.assoc 1 c.CS.mu_agree_given_decide);
  (* Section 7's closing remark: with thresholds exponentially close to
     1 (soundness amplification), beliefs at action time are
     exponentially close to 1 as well. *)
  List.iter
    (fun (rounds, expected) ->
      let a = IP.analyze ~rounds () in
      row_q ~exp_id:"AUX-IP"
        ~label:(Printf.sprintf "interactive proof k=%d: µ(true|accept)" rounds)
        ~paper:expected a.IP.mu_true_given_accept;
      row_q ~exp_id:"AUX-IP"
        ~label:(Printf.sprintf "  verifier belief at accept (k=%d)" rounds)
        ~paper:expected a.IP.belief_at_accept)
    [ (2, "4/5"); (6, "64/65"); (10, "1024/1025") ]

(* ------------------------------------------------------------------ *)
(* Scaling series — the shape of each core algorithm's cost            *)
(* ------------------------------------------------------------------ *)

let time_ms f =
  let start = Sys.time () in
  let result = f () in
  (result, (Sys.time () -. start) *. 1000.)

let scaling_series () =
  section "Scaling series (coarse wall-clock, machine-dependent; shapes are the point)";
  Printf.printf "  coordinated attack vs rounds:\n";
  Printf.printf "  %-4s %-8s %-8s %-12s %-14s %-14s\n" "k" "nodes" "runs" "compile ms"
    "thm62 ms" "µ(both|A)";
  List.iter
    (fun rounds ->
      let t, compile_ms = time_ms (fun () -> CA.tree ~rounds ()) in
      let r, check_ms =
        time_ms (fun () ->
            Theorems.expectation_identity (CA.phi_both t) ~agent:CA.general_a ~act:CA.attack)
      in
      Printf.printf "  %-4d %-8d %-8d %-12.2f %-14.2f %-14s\n" rounds (Tree.n_nodes t)
        (Tree.n_runs t) compile_ms check_ms (Q.to_decimal_string r.Theorems.mu))
    [ 1; 2; 3; 4; 5 ];
  Printf.printf "\n  random protocol systems vs depth (seed 5):\n";
  Printf.printf "  %-6s %-8s %-8s %-12s %-14s %-14s\n" "depth" "nodes" "runs" "gen ms"
    "belief ms" "independ. ms";
  List.iter
    (fun depth ->
      let params = { Gen.default_params with depth } in
      let t, gen_ms = time_ms (fun () -> Gen.tree ~params 5) in
      match Gen.pick_proper_action t ~seed:5 with
      | None -> ()
      | Some (agent, act) ->
        let fact = Gen.past_based_fact t ~seed:5 in
        let _, belief_ms = time_ms (fun () -> Belief.expected_at_action fact ~agent ~act) in
        let _, indep_ms = time_ms (fun () -> Independence.holds fact ~agent ~act) in
        Printf.printf "  %-6d %-8d %-8d %-12.2f %-14.2f %-14.2f\n" depth (Tree.n_nodes t)
          (Tree.n_runs t) gen_ms belief_ms indep_ms)
    [ 2; 3; 4; 5 ];
  Printf.printf "\n  judge system vs evidence rounds:\n";
  Printf.printf "  %-6s %-8s %-12s %-16s\n" "n" "runs" "analyze ms" "µ(guilty|convict)";
  List.iter
    (fun rounds ->
      let a, ms =
        time_ms (fun () -> JD.analyze ~rounds ~convict_at:((rounds / 2) + 1) ())
      in
      Printf.printf "  %-6d %-8d %-12.2f %-16s\n" rounds (1 lsl (rounds + 1)) ms
        (Q.to_decimal_string a.JD.mu_guilty_given_convict))
    [ 2; 4; 6; 8 ]

(* ------------------------------------------------------------------ *)
(* Observability export: per-scenario wall time plus every pak_obs
   counter, written to BENCH_obs.json. This is the machine-readable
   perf trajectory: counters are deterministic (exact work counts), so
   a future PR that changes the cost profile of an engine shows up as
   a counter diff even when wall times are too noisy to compare.       *)
(* ------------------------------------------------------------------ *)

(* Version stamp of the BENCH_obs.json / BENCH_par.json layout; bumped
   on incompatible change. v1 was the unversioned PR 1-3 layout; v3
   added the allocated-words columns. *)
let bench_schema_version = 3

(* Process-total minor words: the domain-local precise counter
   combined with quick_stat's collection-time total (which also
   absorbs terminated pool domains) — exact on a single domain,
   accurate to one unflushed minor heap per live domain otherwise. *)
let minor_words_total () =
  Float.max (Gc.minor_words ()) (Gc.quick_stat ()).Gc.minor_words

(* Words allocated directly on the major heap (allocations too large
   for the minor heap), excluding promotions. *)
let major_direct_words () =
  let s = Gc.quick_stat () in
  s.Gc.major_words -. s.Gc.promoted_words

let obs_scenarios () =
  let fs_tree = FS.tree FS.Original in
  let fs_both = FS.phi_both fs_tree in
  let valuation atom g =
    atom = "go" && String.length (Gstate.local g 0) >= 3 && (Gstate.local g 0).[2] = '1'
  in
  let formula = Parser.parse "K[0] go & B[0]>=9/10 F does[1](fire)" in
  let cb_formula = Parser.parse "CB[0,1]>=3/4 go" in
  let ca_tree = CA.tree ~rounds:3 () in
  let ca_both = CA.phi_both ca_tree in
  (* Serve front end, end-to-end through Serve.run_string. A leading
     frame + ping warms the parsed-system cache in its own drain, so
     tree-cache hit/miss counts stay deterministic at any job count;
     the cold stream uses distinct formulas (all result-cache misses),
     the warm stream repeats one (one miss, then hits). All serve.*
     counters in BENCH_obs.json / the snapshot are exact. *)
  let serve_doc = Tree_io.to_string (Systems.Figure_one.tree ()) in
  let serve_req id fml =
    let open Serve.Sexp in
    Serve.Frame.encode
      (to_string
         (List
            [ Atom "request"; List [ Atom "id"; Atom (string_of_int id) ];
              List [ Atom "op"; Atom "eval" ]; List [ Atom "system"; Str serve_doc ];
              List [ Atom "formula"; Str fml ]
            ]))
  in
  let serve_stream ~distinct =
    let b = Buffer.create 4096 in
    Buffer.add_string b (serve_req 1 "a0_g0");
    Buffer.add_string b (Serve.Frame.encode "(ping (id 2))");
    for k = 1 to 40 do
      let f =
        if distinct then Printf.sprintf "B[0]>=%d/1000 a0_g0" k else "K[0] a0_g0"
      in
      Buffer.add_string b (serve_req (100 + k) f)
    done;
    Buffer.contents b
  in
  let serve_cold = serve_stream ~distinct:true in
  let serve_warm = serve_stream ~distinct:false in
  let serve_run jobs stream () =
    let config = { Serve.default_config with Serve.jobs; cache_max = 64 } in
    let _out, code = Serve.run_string ~config stream in
    if code <> 0 then failwith "bench: serve stream did not drain cleanly"
  in
  [ ("modelcheck_kb_fs", fun () -> ignore (Semantics.eval fs_tree ~valuation formula));
    (* Engine pair: the same formulas through the explicit recursive
       and vectorized entry points, so bench_diff tracks the two
       engines side by side (doc/PERFORMANCE.md, "Vectorized
       evaluation"). modelcheck_kb_fs/common_belief_fixpoint_fs above
       are the historical recursive-engine numbers and keep their
       names for baseline continuity. *)
    ( "modelcheck_kb_fs_vectorized",
      fun () -> ignore (Semantics.eval_vec fs_tree ~valuation formula) );
    ( "common_belief_fixpoint_fs_vectorized",
      fun () -> ignore (Semantics.eval_vec fs_tree ~valuation cb_formula) );
    ("serve_j1_cold", serve_run 1 serve_cold);
    ("serve_j1_warm", serve_run 1 serve_warm);
    ("serve_j4_cold", serve_run 4 serve_cold);
    ("serve_j4_warm", serve_run 4 serve_warm);
    ( "common_belief_fixpoint_fs",
      fun () -> ignore (Semantics.eval fs_tree ~valuation cb_formula) );
    ( "theorem62_fs",
      fun () -> ignore (Theorems.expectation_identity fs_both ~agent:FS.alice ~act:FS.fire) );
    ( "belief_expectation_fs",
      fun () -> ignore (Belief.expected_at_action fs_both ~agent:FS.alice ~act:FS.fire) );
    ( "analyze_attack_k3",
      fun () ->
        ignore
          (analyze_constraint ~fact:ca_both ~agent:CA.general_a ~act:CA.attack
             ~threshold:(Q.of_ints 19 20)) );
    ("simulate_2k_fs", fun () -> ignore (Simulate.sample_runs fs_tree ~samples:2_000 ~seed:1));
    (* Provenance: certifying evaluation (witness construction) and the
       independent checker's full re-derivation. The cert.* counters in
       BENCH_obs.json are the layer's work profile; certify-vs-eval and
       check-vs-certify wall-time ratios are its measured overhead. *)
    ("certify_kb_fs", fun () -> ignore (Semantics.certify fs_tree ~valuation formula));
    ( "certify_check_cb_fs",
      fun () ->
        let cert = Semantics.certify fs_tree ~valuation cb_formula in
        match Cert.check ~valuation fs_tree cert with
        | Ok () -> ()
        | Error _ -> assert false );
    ( "theorem_cert_thm62_fs",
      fun () ->
        let tc =
          Cert.Theorem.certify fs_both ~check:Sweep.Expectation ~agent:FS.alice ~act:FS.fire
            ~eps:(Q.of_ints 1 10) ()
        in
        match Cert.Theorem.check fs_tree ~fact:fs_both tc with
        | Ok () -> ()
        | Error _ -> assert false );
    (* Guard overhead: the same workload with no budget installed
       (charges are one load-and-branch) vs under a never-exhausting
       budget (full charge accounting + periodic deadline checks).
       Comparing the wall_ms of the _off/_on pair in BENCH_obs.json is
       the guardrails' measured cost; the counters must be identical. *)
    ( "guard_off_cb_fixpoint_x50",
      fun () ->
        for _ = 1 to 50 do
          ignore (Semantics.eval fs_tree ~valuation cb_formula)
        done );
    ( "guard_on_cb_fixpoint_x50",
      fun () ->
        let huge =
          Budget.limits ~max_points:max_int ~max_nodes:max_int ~max_limbs:max_int
            ~max_iters:max_int ~timeout_ms:(24 * 3600 * 1000) ()
        in
        match
          Budget.with_budget huge (fun () ->
              for _ = 1 to 50 do
                ignore (Semantics.eval fs_tree ~valuation cb_formula)
              done)
        with
        | Ok () -> ()
        | Error _ -> assert false );
    ( "guard_off_theorem62_x50",
      fun () ->
        for _ = 1 to 50 do
          ignore (Theorems.expectation_identity fs_both ~agent:FS.alice ~act:FS.fire)
        done );
    ( "guard_on_theorem62_x50",
      fun () ->
        let huge =
          Budget.limits ~max_points:max_int ~max_nodes:max_int ~max_limbs:max_int
            ~max_iters:max_int ~timeout_ms:(24 * 3600 * 1000) ()
        in
        match
          Budget.with_budget huge (fun () ->
              for _ = 1 to 50 do
                ignore (Theorems.expectation_identity fs_both ~agent:FS.alice ~act:FS.fire)
              done)
        with
        | Ok () -> ()
        | Error _ -> assert false );
    (* Alloc-attribution overhead: the same span-heavy workload with
       per-span Gc counter reads disabled vs enabled. Comparing the
       wall_ms of the _off/_on pair in BENCH_obs.json is the allocation
       telemetry's measured cost; if it ever exceeds ~2% on these
       scenarios, --no-alloc is the kill switch. *)
    ( "alloc_off_cb_fixpoint_x50",
      fun () ->
        let prev = Obs.track_allocations () in
        Obs.set_track_allocations false;
        Fun.protect
          ~finally:(fun () -> Obs.set_track_allocations prev)
          (fun () ->
            for _ = 1 to 50 do
              ignore (Semantics.eval fs_tree ~valuation cb_formula)
            done) );
    ( "alloc_on_cb_fixpoint_x50",
      fun () ->
        let prev = Obs.track_allocations () in
        Obs.set_track_allocations true;
        Fun.protect
          ~finally:(fun () -> Obs.set_track_allocations prev)
          (fun () ->
            for _ = 1 to 50 do
              ignore (Semantics.eval fs_tree ~valuation cb_formula)
            done) )
  ]

let export_obs () =
  let scenarios = obs_scenarios () in
  let was_enabled = Obs.enabled () in
  Obs.enable ();
  let rows =
    List.map
      (fun (name, f) ->
        Obs.reset ();
        let mj0 = major_direct_words () in
        let mw0 = Gc.minor_words () in
        let t0 = Sys.time () in
        f ();
        let ms = (Sys.time () -. t0) *. 1000. in
        let minor_aw = Float.max 0. (Gc.minor_words () -. mw0) in
        let major_aw = Float.max 0. (major_direct_words () -. mj0) in
        (name, ms, minor_aw, major_aw, List.filter (fun (_, v) -> v <> 0) (Obs.counters ())))
      scenarios
  in
  Obs.reset ();
  if not was_enabled then Obs.disable ();
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "{\n  \"schema_version\": %d,\n" bench_schema_version);
  Buffer.add_string buf "  \"benchmarks\": [\n";
  List.iteri
    (fun i (name, ms, minor_aw, major_aw, counters) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf (Printf.sprintf "    {\n      \"name\": \"%s\",\n" name);
      Buffer.add_string buf (Printf.sprintf "      \"wall_ms\": %.3f,\n" ms);
      Buffer.add_string buf (Printf.sprintf "      \"minor_words\": %.0f,\n" minor_aw);
      Buffer.add_string buf (Printf.sprintf "      \"major_words\": %.0f,\n" major_aw);
      Buffer.add_string buf "      \"counters\": {";
      List.iteri
        (fun j (cname, v) ->
          if j > 0 then Buffer.add_string buf ",";
          Buffer.add_string buf (Printf.sprintf "\n        \"%s\": %d" cname v))
        counters;
      Buffer.add_string buf "\n      }\n    }")
    rows;
  Buffer.add_string buf "\n  ]\n}\n";
  let out = open_out "BENCH_obs.json" in
  Buffer.output_buffer out buf;
  close_out out;
  Printf.printf "\n== Observability export: BENCH_obs.json (%d scenarios) ==\n"
    (List.length rows)

(* Metrics-snapshot mode (--metrics-json FILE): run the deterministic
   obs scenarios with full instrumentation — each wrapped in a
   "bench.<name>" span so the snapshot carries a span tree — and write
   one versioned Obs.Snapshot. Counters, span call counts and
   histogram sample totals in the file are exact work counts, so
   tools/bench_diff.exe can hold them to a committed baseline
   (bench/baselines/bench.json) byte-exactly while wall times get a
   tolerance. *)
let export_snapshot file =
  let scenarios = obs_scenarios () in
  let was_enabled = Obs.enabled () in
  Obs.reset ();
  Obs.enable ();
  let mw0 = Gc.minor_words () in
  List.iter (fun (name, f) -> Obs.span ("bench." ^ name) f) scenarios;
  let process_minor = Gc.minor_words () -. mw0 in
  (* Attribution coverage: the scenarios run single-domain and each is
     wrapped in a root span, so self words over the whole tree
     telescope to the roots' inclusive words and must account for
     (nearly) every minor word the process allocated — what escapes is
     the per-span instrumentation cost and the list iteration between
     scenarios. More than 10% unattributed means the span deltas are
     wrong (e.g. a counter read got reordered). *)
  let attributed =
    List.fold_left
      (fun acc n -> acc +. n.Obs.sn_minor_aw)
      0. (Obs.span_tree ())
  in
  let coverage = if process_minor > 0. then attributed /. process_minor else 1. in
  if Obs.track_allocations () && Float.abs (coverage -. 1.) > 0.1 then begin
    incr failures;
    Printf.printf "  alloc attribution MISMATCH: spans account for %.1f%% of %.0f minor words\n"
      (100. *. coverage) process_minor
  end;
  Obs.Snapshot.write file (Obs.Snapshot.capture ());
  Obs.reset ();
  if not was_enabled then Obs.disable ();
  Printf.printf
    "\n== Metrics snapshot: %s (%d scenarios, schema v%d, %.1f%% of minor words attributed) ==\n"
    file (List.length scenarios) Obs.Snapshot.schema_version (100. *. coverage)

(* ------------------------------------------------------------------ *)
(* Part 2: timing benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let timing_tests () =
  let open Bechamel in
  let fs_tree = FS.tree FS.Original in
  let fs_both = FS.phi_both fs_tree in
  let big_gen = { Gen.default_params with depth = 4 } in
  let gen_tree_40 = Gen.tree 42 in
  let gen_fact = Gen.past_based_fact gen_tree_40 ~seed:42 in
  let gen_action =
    match Gen.pick_proper_action gen_tree_40 ~seed:42 with
    | Some a -> a
    | None -> (0, "a0_0")
  in
  let valuation atom g =
    atom = "go" && String.length (Gstate.local g 0) >= 3 && (Gstate.local g 0).[2] = '1'
  in
  let formula = Parser.parse "K[0] go & B[0]>=9/10 F does[1](fire)" in
  let cb_formula = Parser.parse "CB[0,1]>=3/4 go" in
  let q_a = Q.of_ints 355 113 and q_b = Q.of_ints 987654321 123456789 in
  [ Test.make ~name:"q_mul_normalize" (Staged.stage (fun () -> Q.mul q_a q_b));
    Test.make ~name:"q_pow20" (Staged.stage (fun () -> Q.pow q_b 20));
    Test.make ~name:"compile_fs" (Staged.stage (fun () -> FS.tree FS.Original));
    Test.make ~name:"compile_attack_k3" (Staged.stage (fun () -> CA.tree ~rounds:3 ()));
    Test.make ~name:"compile_judge_n5"
      (Staged.stage (fun () -> JD.tree ~rounds:5 ~convict_at:3 ()));
    Test.make ~name:"gen_random_tree_d4" (Staged.stage (fun () -> Gen.tree ~params:big_gen 7));
    Test.make ~name:"belief_expectation_fs"
      (Staged.stage (fun () -> Belief.expected_at_action fs_both ~agent:FS.alice ~act:FS.fire));
    Test.make ~name:"independence_check_fs"
      (Staged.stage (fun () -> Independence.holds fs_both ~agent:FS.alice ~act:FS.fire));
    Test.make ~name:"theorem62_check_fs"
      (Staged.stage (fun () ->
           Theorems.expectation_identity fs_both ~agent:FS.alice ~act:FS.fire));
    Test.make ~name:"theorem62_check_random"
      (Staged.stage (fun () ->
           let agent, act = gen_action in
           Theorems.expectation_identity gen_fact ~agent ~act));
    Test.make ~name:"parse_formula"
      (Staged.stage (fun () -> Parser.parse "K[0] go & B[0]>=9/10 F does[1](fire)"));
    Test.make ~name:"modelcheck_kb_fs"
      (Staged.stage (fun () -> Semantics.eval fs_tree ~valuation formula));
    Test.make ~name:"common_belief_fixpoint_fs"
      (Staged.stage (fun () -> Semantics.eval fs_tree ~valuation cb_formula));
    Test.make ~name:"modelcheck_kb_fs_vectorized"
      (Staged.stage (fun () -> Semantics.eval_vec fs_tree ~valuation formula));
    Test.make ~name:"common_belief_fixpoint_fs_vectorized"
      (Staged.stage (fun () -> Semantics.eval_vec fs_tree ~valuation cb_formula));
    Test.make ~name:"policy_frontier_fs"
      (Staged.stage (fun () -> Policy.frontier fs_both ~agent:FS.alice ~act:FS.fire));
    Test.make ~name:"simulate_1k_runs_fs"
      (Staged.stage (fun () -> Simulate.sample_runs fs_tree ~samples:1000 ~seed:1));
    Test.make ~name:"kripke_extract_fs" (Staged.stage (fun () -> Kripke.of_tree fs_tree));
    Test.make ~name:"tree_io_roundtrip_fs"
      (Staged.stage (fun () -> Tree_io.of_string (Tree_io.to_string fs_tree)));
    Test.make ~name:"aumann_check_fs"
      (Staged.stage (fun () -> Aumann.check fs_both ~group:[ 0; 1 ]));
    Test.make ~name:"simplify_formula"
      (Staged.stage (fun () -> Simplify.simplify formula));
    Test.make ~name:"appendix_derivation_fs"
      (Staged.stage (fun () -> Appendix.theorem62 fs_both ~agent:FS.alice ~act:FS.fire));
    Test.make ~name:"reference_engine_fs"
      (Staged.stage (fun () ->
           Reference.expected_beta_at_alpha fs_both ~agent:FS.alice ~act:FS.fire))
  ]

let run_timings () =
  let open Bechamel in
  Printf.printf "\n== Timing benchmarks (bechamel, OLS ns/run) ==\n%!";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let tests = Test.make_grouped ~name:"pak" (timing_tests ()) in
  let raw = Benchmark.all cfg instances tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) results [] in
  Printf.printf "  %-38s %14s %10s\n" "benchmark" "ns/run" "r²";
  List.iter
    (fun (name, result) ->
      let estimate =
        match Analyze.OLS.estimates result with Some [ e ] -> e | _ -> nan
      in
      let r2 = match Analyze.OLS.r_square result with Some r -> r | None -> nan in
      Printf.printf "  %-38s %14.1f %10.4f\n" name estimate r2)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* Parallelism export: BENCH_par.json                                  *)
(* ------------------------------------------------------------------ *)

(* Serial-vs-parallel wall times for every pool-parallelized engine:
   theorem sweeps, block-seeded Monte-Carlo estimation, and the raw
   pool on a synthetic CPU-bound map. Each engine runs once per job
   count; "speedup" is wall(1)/wall(jobs). Results are checked
   identical across job counts while timing — a speedup obtained by
   computing something else would be meaningless. The file records the
   host's recommended domain count: on a single-core runner speedups
   hover around 1.0 and the numbers measure pool overhead instead. *)
let export_par () =
  let wall () = Unix.gettimeofday () in
  let depth4 = { Gen.default_params with Gen.depth = 4 } in
  let fs = FS.tree FS.Original in
  let fs_event = Action.runs_performing fs ~agent:FS.alice ~act:FS.fire in
  let spin x =
    let r = ref x in
    for _ = 1 to 200_000 do
      let v = !r in
      let v = v lxor (v lsl 13) land max_int in
      let v = v lxor (v lsr 7) in
      r := v lxor (v lsl 17) land max_int
    done;
    !r
  in
  let work_items = Array.init 64 (fun i -> i * 7919) in
  let engines =
    [ ( "sweep_thm62_depth4",
        fun pool ->
          let r = Sweep.run ?pool ~params:depth4 Sweep.Expectation ~first_seed:1 ~count:24 in
          Printf.sprintf "%d/%d" (r.Sweep.checked - List.length r.Sweep.violations) r.Sweep.checked );
      ( "sweep_all_checks",
        fun pool ->
          let rs = Sweep.run_all ?pool ~first_seed:1 ~count:60 () in
          Printf.sprintf "%b" (List.for_all Sweep.passed rs) );
      ( "estimate_par_100k",
        fun pool ->
          Q.to_string (Simulate.estimate_par ?pool fs ~event:fs_event ~samples:100_000 ~seed:42) );
      ( "pool_map_64",
        fun pool ->
          let out =
            match pool with
            | Some p -> Pool.map p spin work_items
            | None -> Array.map spin work_items
          in
          string_of_int (Array.fold_left ( + ) 0 out) )
    ]
  in
  let jobs_list = [ 1; 2; 4; 8 ] in
  let rows =
    List.map
      (fun (name, f) ->
        let timings =
          List.map
            (fun jobs ->
              let run pool = let t0 = wall () in let v = f pool in ((wall () -. t0) *. 1000., v) in
              (* Allocation is measured around the whole with_pool
                 expression: quick_stat absorbs the joined workers'
                 counters, so the delta is the engine's process-total
                 allocation at this job count. *)
              let mw0 = minor_words_total () in
              let ms, v =
                if jobs = 1 then run None
                else Pool.with_pool ~jobs (fun pool -> run (Some pool))
              in
              let aw = Float.max 0. (minor_words_total () -. mw0) in
              (jobs, ms, aw, v))
            jobs_list
        in
        (* Determinism cross-check: every job count must compute the
           same value, or the timings compare different work. And the
           same work should allocate the same words: minor words must
           be jobs-invariant to within 2x + a 1M-word floor (slack for
           per-worker pool setup and GC-timing jitter in promotion). *)
        (match timings with
         | (_, _, aw1, v1) :: rest ->
           List.iter
             (fun (jobs, _, aw, v) ->
               if v <> v1 then begin
                 incr failures;
                 Printf.printf "  %-22s MISMATCH: jobs=%d computed %s, jobs=1 computed %s\n"
                   name jobs v v1
               end;
               if Float.abs (aw -. aw1) > 1e6
                  && (aw > aw1 *. 2. || aw1 > aw *. 2.)
               then begin
                 incr failures;
                 Printf.printf
                   "  %-22s ALLOC MISMATCH: jobs=%d allocated %.0f minor words, jobs=1 %.0f\n"
                   name jobs aw aw1
               end)
             rest
         | [] -> ());
        (name, timings))
      engines
  in
  let serial_ms timings = match timings with (1, ms, _, _) :: _ -> ms | _ -> nan in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "{\n  \"schema_version\": %d,\n" bench_schema_version);
  Buffer.add_string buf
    (Printf.sprintf "  \"recommended_domains\": %d,\n" (Domain.recommended_domain_count ()));
  Buffer.add_string buf "  \"benchmarks\": [\n";
  List.iteri
    (fun i (name, timings) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf (Printf.sprintf "    {\n      \"name\": \"%s\",\n" name);
      Buffer.add_string buf "      \"runs\": [";
      let s = serial_ms timings in
      List.iteri
        (fun j (jobs, ms, aw, _) ->
          if j > 0 then Buffer.add_string buf ",";
          Buffer.add_string buf
            (Printf.sprintf
               "\n        {\"jobs\": %d, \"wall_ms\": %.3f, \"speedup\": %.3f, \
                \"minor_words\": %.0f}"
               jobs ms (s /. ms) aw))
        timings;
      Buffer.add_string buf "\n      ]\n    }")
    rows;
  Buffer.add_string buf "\n  ]\n}\n";
  let out = open_out "BENCH_par.json" in
  Buffer.output_buffer out buf;
  close_out out;
  Printf.printf "\n== Parallelism export: BENCH_par.json (%d engines x jobs %s, %d domains recommended) ==\n"
    (List.length rows)
    (String.concat "/" (List.map string_of_int jobs_list))
    (Domain.recommended_domain_count ());
  List.iter
    (fun (name, timings) ->
      Printf.printf "  %-22s" name;
      List.iter (fun (jobs, ms, _, _) -> Printf.printf "  j%d %8.1fms" jobs ms) timings;
      print_newline ())
    rows

(* Value of "--metrics-json FILE" in argv, if present. *)
let metrics_json_arg () =
  let n = Array.length Sys.argv in
  let rec find i =
    if i >= n then None
    else if Sys.argv.(i) = "--metrics-json" && i + 1 < n then Some Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let () =
  Budget.set_wall_clock (Some Unix.gettimeofday);
  Printf.printf "Probably Approximately Knowing — reproduction harness\n";
  Printf.printf "(all probabilities exact rationals; OK = exact equality)\n";
  exp_e1 ();
  exp_f1 ();
  exp_f2 ();
  exp_theorems_random ();
  exp_t71_systems ();
  exp_kop_reliable ();
  exp_s8 ();
  exp_ms ();
  exp_aux_systems ();
  scaling_series ();
  export_obs ();
  export_par ();
  Option.iter export_snapshot (metrics_json_arg ());
  Printf.printf "\n== Reproduction summary: %s ==\n"
    (if !failures = 0 then "ALL CLAIMS REPRODUCED EXACTLY"
     else Printf.sprintf "%d MISMATCHES" !failures);
  let skip_timing = Array.mem "--no-timing" Sys.argv in
  if not skip_timing then run_timings ();
  exit (if !failures = 0 then 0 else 1)
